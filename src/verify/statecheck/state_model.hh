/**
 * @file
 * nord-statecheck declaration parser: the per-class member model.
 *
 * NoRD's correctness stack -- bit-exact checkpoint/restore, stateHash()
 * lockstep tests, crash-resumable campaigns and the shard-safety layer --
 * silently breaks the moment a data member is added to a component and
 * forgotten in serializeState() or declareOwnership(). This parser makes
 * the state model *machine-readable*: it extracts, from the C++ headers
 * and sources themselves, for every Clocked / serializable class in src/:
 *
 *  - every non-static data member, with const/reference/pointer/static
 *    qualifiers and any NORD_STATE_EXCLUDE(category, reason) annotation
 *    (see common/state_annotations.hh);
 *  - nested member structs that are actually used as member storage
 *    (e.g. Router::VirtualChannel inside the VC buffer array), whose
 *    fields are checkpoint state exactly like direct members;
 *  - every out-of-line and inline member-function body, so the rule layer
 *    (state_check.hh) can compute the serializeState() walk closure, the
 *    tick()-path mutation set and the declareOwnership() contract;
 *  - the external serializer walks StateSerializer::io(T&) provides for
 *    plain structs like Flit and PacketDescriptor.
 *
 * Like the nord-lint engine it is deliberately std-only (no libclang, no
 * nord dependencies): the CLI builds standalone and the model can be
 * extracted from a tree that does not compile. It is a heuristic
 * declaration scanner, not a full C++ parser -- the accepted shapes and
 * known limits are documented in DESIGN.md section 5.12; the annotation-
 * truthing tests keep the model honest at runtime.
 */

#ifndef NORD_VERIFY_STATECHECK_STATE_MODEL_HH
#define NORD_VERIFY_STATECHECK_STATE_MODEL_HH

#include <string>
#include <vector>

namespace nord {
namespace statecheck {

/** One data member of a modeled class. */
struct MemberModel
{
    std::string name;      ///< declared identifier (e.g. "tickedLast_")
    std::string declText;  ///< declaration text (whitespace-collapsed)
    int line = 0;          ///< 1-based line of the declaration
    bool isStatic = false;
    bool isConst = false;      ///< const / constexpr / constinit
    bool isReference = false;  ///< declarator is a reference
    bool isPointer = false;    ///< declarator is (or contains) a pointer

    bool excluded = false;     ///< carries NORD_STATE_EXCLUDE
    std::string category;      ///< annotation category token
    std::string reason;        ///< annotation reason (string literal body)
    int excludeLine = 0;       ///< line of the annotation
};

/** One class or struct extracted from a header. */
struct ClassModel
{
    std::string name;       ///< unqualified name (e.g. "Router")
    std::string qualified;  ///< nesting-qualified (e.g. "Router::InputPort")
    std::string file;       ///< repo-relative path of the header
    int line = 0;           ///< 1-based line of the class keyword
    bool clocked = false;            ///< base clause names Clocked
    bool declaresSerialize = false;  ///< body declares serializeState
    bool declaresOwnership = false;  ///< body declares declareOwnership
    bool nested = false;             ///< defined inside another class
    bool usedAsMemberType = false;   ///< nested + named by a member's type
    std::string outer;               ///< innermost enclosing class name
    std::vector<MemberModel> members;
    std::vector<int> danglingExcludeLines;  ///< annotations binding nothing
};

/** One member-function body (out-of-line or inline). */
struct MethodBody
{
    std::string cls;   ///< owning class, unqualified (e.g. "Router")
    std::string name;  ///< method name; "io#Flit" for StateSerializer::io
    std::string text;  ///< stripped body text (between the braces)
    std::string file;
    int line = 0;
};

/** The whole-tree model handed to the rule layer. */
struct TreeModel
{
    std::vector<ClassModel> classes;
    std::vector<MethodBody> methods;
};

/**
 * Parse one header: append class models (with members and annotations)
 * and inline method bodies to @p model. @p path should be repo-relative.
 */
void parseHeader(const std::string &path, const std::string &content,
                 TreeModel &model);

/**
 * Parse out-of-line member-function definitions (Class::method) from a
 * .cc or .hh file and append their bodies to @p model.
 */
void parseMethodBodies(const std::string &path, const std::string &content,
                       TreeModel &model);

/**
 * Build the model for every *.hh / *.cc under @p root's src/ directory.
 * On I/O failure returns what was gathered and sets *err.
 */
TreeModel buildTreeModel(const std::string &root, std::string *err = nullptr);

/** True when @p word occurs as a whole identifier inside @p text. */
bool containsWord(const std::string &text, const std::string &word);

/**
 * True when member @p name is mutated somewhere in @p body: assigned
 * (including compound assignment and element assignment), incremented /
 * decremented, or the receiver of a mutating container call
 * (.clear/.push_back/.emplace/...).
 */
bool mutatesMember(const std::string &body, const std::string &name);

}  // namespace statecheck
}  // namespace nord

#endif  // NORD_VERIFY_STATECHECK_STATE_MODEL_HH

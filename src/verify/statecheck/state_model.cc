/**
 * @file
 * nord-statecheck declaration parser (see state_model.hh).
 *
 * Std-only, like the nord-lint engine: the CLI builds this standalone and
 * the model must be extractable from a tree that does not compile. The
 * scanner works on stripCode()-stripped text (comments and string
 * literals blanked, offsets preserved), so quoted or commented "members"
 * can never confuse it; annotation reasons are read back from the
 * original text at the same offsets.
 */

#include "verify/statecheck/state_model.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "verify/lint/source_lint.hh"

namespace nord {
namespace statecheck {

namespace {

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isWordAt(const std::string &s, size_t pos, const std::string &word)
{
    if (s.compare(pos, word.size(), word) != 0)
        return false;
    if (pos > 0 && isWordChar(s[pos - 1]))
        return false;
    const size_t end = pos + word.size();
    if (end < s.size() && isWordChar(s[end]))
        return false;
    return true;
}

int
lineOf(const std::string &s, size_t pos)
{
    return 1 + static_cast<int>(std::count(
                   s.begin(), s.begin() + static_cast<long>(pos), '\n'));
}

size_t
skipSpaces(const std::string &s, size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    return i;
}

/** Identifier starting at @p i ("" when none). */
std::string
wordAt(const std::string &s, size_t i)
{
    size_t j = i;
    while (j < s.size() && isWordChar(s[j]))
        ++j;
    return s.substr(i, j - i);
}

/** Index of the brace matching the '{' at @p open (npos if unbalanced). */
size_t
matchBrace(const std::string &s, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
        if (s[i] == '{')
            ++depth;
        else if (s[i] == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Index of the ')' matching the '(' at @p open (npos if unbalanced). */
size_t
matchParen(const std::string &s, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

std::string
collapseWs(const std::string &s)
{
    std::string out;
    bool space = false;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            space = !out.empty();
            continue;
        }
        if (space) {
            out.push_back(' ');
            space = false;
        }
        out.push_back(c);
    }
    return out;
}

/** One class/struct span found in a stripped header. */
struct RawClass
{
    std::string name;
    size_t keywordPos = 0;
    size_t bodyOpen = 0;   ///< offset of '{'
    size_t bodyClose = 0;  ///< offset of matching '}'
    bool clocked = false;
};

/**
 * Find every named class/struct definition (not forward declarations,
 * not enum class) in @p stripped.
 */
std::vector<RawClass>
findClasses(const std::string &stripped)
{
    std::vector<RawClass> out;
    for (const char *kw : {"class", "struct"}) {
        const size_t kwLen = std::string(kw).size();
        for (size_t i = stripped.find(kw); i != std::string::npos;
             i = stripped.find(kw, i + kwLen)) {
            if (!isWordAt(stripped, i, kw))
                continue;
            // `enum class` / `enum struct` declares an enum, not a class.
            size_t b = i;
            while (b > 0 && std::isspace(
                                static_cast<unsigned char>(stripped[b - 1])))
                --b;
            size_t bw = b;
            while (bw > 0 && isWordChar(stripped[bw - 1]))
                --bw;
            if (stripped.compare(bw, b - bw, "enum") == 0)
                continue;

            size_t j = skipSpaces(stripped, i + kwLen);
            const std::string name = wordAt(stripped, j);
            if (name.empty())
                continue;
            j = skipSpaces(stripped, j + name.size());
            if (isWordAt(stripped, j, "final"))
                j = skipSpaces(stripped, j + 5);

            RawClass rc;
            rc.name = name;
            rc.keywordPos = i;
            if (j >= stripped.size())
                continue;
            if (stripped[j] == ':' && j + 1 < stripped.size() &&
                stripped[j + 1] != ':') {
                // Base clause up to the body brace.
                const size_t open = stripped.find('{', j);
                if (open == std::string::npos)
                    continue;
                const std::string bases =
                    stripped.substr(j + 1, open - j - 1);
                rc.clocked = containsWord(bases, "Clocked");
                rc.bodyOpen = open;
            } else if (stripped[j] == '{') {
                rc.bodyOpen = j;
            } else {
                // Forward declaration, qualified-name use, etc.
                continue;
            }
            rc.bodyClose = matchBrace(stripped, rc.bodyOpen);
            if (rc.bodyClose == std::string::npos)
                continue;
            out.push_back(rc);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const RawClass &a, const RawClass &b) {
                  return a.keywordPos < b.keywordPos;
              });
    return out;
}

/** A NORD_STATE_EXCLUDE annotation found inside one class body. */
struct Annotation
{
    size_t end = 0;  ///< offset just past the closing ')'
    int line = 0;
    std::string category;
    std::string reason;
};

const char kExcludeMacro[] = "NORD_STATE_EXCLUDE";

/**
 * Extract annotations from the class-body copy @p text (offsets relative
 * to @p base in the file), reading reasons back from @p original, and
 * blank each annotation span so the member scanner never sees it.
 */
std::vector<Annotation>
extractAnnotations(std::string &text, const std::string &original,
                   size_t base)
{
    std::vector<Annotation> out;
    const size_t macroLen = sizeof(kExcludeMacro) - 1;
    for (size_t i = text.find(kExcludeMacro); i != std::string::npos;
         i = text.find(kExcludeMacro, i + 1)) {
        if (!isWordAt(text, i, kExcludeMacro))
            continue;
        const size_t open = skipSpaces(text, i + macroLen);
        if (open >= text.size() || text[open] != '(')
            continue;
        const size_t close = matchParen(text, open);
        if (close == std::string::npos)
            continue;
        Annotation a;
        a.end = close + 1;
        a.line = lineOf(text, i);
        a.category = wordAt(text, skipSpaces(text, open + 1));
        // The reason is a string literal: blanked in stripped text, so
        // read it from the original at the same offsets.
        const size_t comma = text.find(',', open);
        if (comma != std::string::npos && comma < close) {
            const std::string raw =
                original.substr(base + comma + 1, close - comma - 1);
            bool in = false;
            for (char c : raw) {
                if (c == '"') {
                    in = !in;
                    continue;
                }
                if (in)
                    a.reason.push_back(c);
            }
        }
        for (size_t k = i; k <= close && k < text.size(); ++k) {
            if (text[k] != '\n')
                text[k] = ' ';
        }
        out.push_back(std::move(a));
    }
    std::sort(out.begin(), out.end(),
              [](const Annotation &a, const Annotation &b) {
                  return a.end < b.end;
              });
    return out;
}

const std::array<const char *, 14> kSkipLeaders = {
    "using",      "typedef",  "friend",    "template",
    "static_assert", "enum",  "class",     "struct",
    "public",     "private",  "protected", "operator",
    "NORD_ASSERT", "NORD_DCHECK",
};

/**
 * Skip any leading `public:` / `private:` / `protected:` labels: the
 * statement scanner splits at ';', so a label and the declaration after
 * it arrive as one statement.
 */
size_t
skipAccessLabels(const std::string &text, size_t start, size_t end)
{
    while (true) {
        start = skipSpaces(text, start);
        if (start >= end)
            return start;
        const std::string w = wordAt(text, start);
        if (w != "public" && w != "private" && w != "protected")
            return start;
        const size_t c = skipSpaces(text, start + w.size());
        if (c >= end || text[c] != ':' ||
            (c + 1 < text.size() && text[c + 1] == ':'))
            return start;
        start = c + 1;
    }
}

/** A parsed member with its statement span (offsets within the body). */
struct ParsedMember
{
    MemberModel m;
    size_t stmtEnd = 0;
};

/**
 * Classify the statement text [begin, end) of a class body: when it is a
 * data-member declaration, append it to @p members.
 */
void
classifyStatement(const std::string &text, size_t begin, size_t end,
                  int lineBase, std::vector<ParsedMember> &members)
{
    const size_t start = skipAccessLabels(text, begin, end);
    if (start >= end)
        return;
    const std::string first = wordAt(text, start);
    for (const char *kw : kSkipLeaders) {
        if (first == kw)
            return;
    }
    const std::string stmt = text.substr(start, end - start);
    if (containsWord(stmt, "operator"))
        return;

    // Find the decisive punctuator at zero template depth: '(' means a
    // function, '=' / '[' / '{' (or none) means a variable declarator.
    int angle = 0;
    size_t nameEnd = std::string::npos;
    for (size_t k = 0; k < stmt.size(); ++k) {
        const char c = stmt[k];
        if (c == '<') {
            ++angle;
        } else if (c == '>') {
            if (angle > 0)
                --angle;
        } else if (angle == 0) {
            if (c == '(')
                return;  // function declaration / constructor
            if (c == '=' || c == '[' || c == '{') {
                nameEnd = k;
                break;
            }
        }
    }
    if (nameEnd == std::string::npos)
        nameEnd = stmt.size();

    // Declared name: last identifier before the decisive punctuator.
    size_t ne = nameEnd;
    while (ne > 0 &&
           std::isspace(static_cast<unsigned char>(stmt[ne - 1])))
        --ne;
    size_t nb = ne;
    while (nb > 0 && isWordChar(stmt[nb - 1]))
        --nb;
    if (nb == ne)
        return;
    const std::string name = stmt.substr(nb, ne - nb);
    if (!std::isalpha(static_cast<unsigned char>(name[0])) &&
        name[0] != '_')
        return;

    ParsedMember pm;
    pm.m.name = name;
    pm.m.declText = collapseWs(stmt);
    pm.m.line = lineBase + lineOf(text, start) - 1;
    pm.stmtEnd = end;

    // Qualifiers before the name, at zero template depth.
    angle = 0;
    for (size_t k = 0; k < nb; ++k) {
        const char c = stmt[k];
        if (c == '<') {
            ++angle;
        } else if (c == '>') {
            if (angle > 0)
                --angle;
        } else if (angle == 0) {
            if (c == '&')
                pm.m.isReference = true;
            else if (c == '*')
                pm.m.isPointer = true;
            else if (isWordChar(c) && (k == 0 || !isWordChar(stmt[k - 1]))) {
                const std::string w = wordAt(stmt, k);
                if (w == "static")
                    pm.m.isStatic = true;
                else if (w == "const" || w == "constexpr" ||
                         w == "constinit")
                    pm.m.isConst = true;
            }
        }
    }
    members.push_back(std::move(pm));
}

/**
 * True when the statement prefix before an opening brace is a function
 * definition (constructor, method) rather than a brace initializer.
 */
bool
prefixLooksLikeFunction(const std::string &text, size_t begin, size_t end)
{
    const size_t start = skipAccessLabels(text, begin, end);
    if (start >= end)
        return false;
    const std::string first = wordAt(text, start);
    for (const char *kw : kSkipLeaders) {
        if (first == kw)
            return true;  // skip the block either way
    }
    int angle = 0;
    for (size_t k = start; k < end; ++k) {
        const char c = text[k];
        if (c == '<') {
            ++angle;
        } else if (c == '>') {
            if (angle > 0)
                --angle;
        } else if (angle == 0) {
            if (c == '(')
                return true;
            if (c == '=')
                return false;  // brace initializer after '='
        }
    }
    return false;
}

/** Name of the function whose declaration prefix is [begin, end). */
std::string
functionName(const std::string &text, size_t begin, size_t end)
{
    int angle = 0;
    for (size_t k = begin; k < end; ++k) {
        const char c = text[k];
        if (c == '<') {
            ++angle;
        } else if (c == '>') {
            if (angle > 0)
                --angle;
        } else if (angle == 0 && c == '(') {
            size_t ne = k;
            while (ne > begin &&
                   std::isspace(static_cast<unsigned char>(text[ne - 1])))
                --ne;
            size_t nb = ne;
            while (nb > begin && isWordChar(text[nb - 1]))
                --nb;
            return text.substr(nb, ne - nb);
        }
    }
    return "";
}

/**
 * Scan the direct body of one class (nested classes + annotations already
 * blanked) for member declarations and inline method bodies.
 */
void
scanClassBody(const std::string &body, int lineBase,
              const std::string &clsName, const std::string &file,
              std::vector<ParsedMember> &members, TreeModel &model)
{
    size_t stmtStart = 0;
    int paren = 0;
    for (size_t i = 0; i < body.size(); ++i) {
        const char c = body[i];
        if (c == '(') {
            ++paren;
        } else if (c == ')') {
            if (paren > 0)
                --paren;
        } else if (c == '{' && paren == 0) {
            const size_t close = matchBrace(body, i);
            if (close == std::string::npos)
                return;
            if (prefixLooksLikeFunction(body, stmtStart, i)) {
                const std::string fn = functionName(body, stmtStart, i);
                if (!fn.empty()) {
                    MethodBody mb;
                    mb.cls = clsName;
                    mb.name = fn;
                    mb.text = body.substr(i + 1, close - i - 1);
                    mb.file = file;
                    mb.line = lineBase + lineOf(body, stmtStart) - 1;
                    model.methods.push_back(std::move(mb));
                }
                i = close;
                const size_t next = skipSpaces(body, i + 1);
                if (next < body.size() && body[next] == ';')
                    i = next;
                stmtStart = i + 1;
            } else {
                i = close;  // brace initializer: statement continues
            }
        } else if (c == ';' && paren == 0) {
            classifyStatement(body, stmtStart, i, lineBase, members);
            stmtStart = i + 1;
        }
    }
}

const std::array<const char *, 20> kMutatingCalls = {
    "push_back", "push_front", "pop_back",  "pop_front", "clear",
    "insert",    "erase",      "assign",    "resize",    "emplace",
    "emplace_back", "emplace_front", "emplace_hint", "push", "pop",
    "reset",     "swap",       "fill",      "store",     "merge",
};

}  // namespace

bool
containsWord(const std::string &text, const std::string &word)
{
    for (size_t i = text.find(word); i != std::string::npos;
         i = text.find(word, i + 1)) {
        if (isWordAt(text, i, word))
            return true;
    }
    return false;
}

bool
mutatesMember(const std::string &body, const std::string &name)
{
    for (size_t i = body.find(name); i != std::string::npos;
         i = body.find(name, i + 1)) {
        if (!isWordAt(body, i, name))
            continue;

        // Pre-increment / pre-decrement.
        size_t b = i;
        while (b > 0 &&
               std::isspace(static_cast<unsigned char>(body[b - 1])))
            --b;
        if (b >= 2 && (body.compare(b - 2, 2, "++") == 0 ||
                       body.compare(b - 2, 2, "--") == 0))
            return true;

        size_t a = i + name.size();
        // Element access: name[...] = ...
        a = skipSpaces(body, a);
        if (a < body.size() && body[a] == '[') {
            int depth = 0;
            while (a < body.size()) {
                if (body[a] == '[')
                    ++depth;
                else if (body[a] == ']' && --depth == 0) {
                    ++a;
                    break;
                }
                ++a;
            }
            a = skipSpaces(body, a);
        }
        if (a >= body.size())
            continue;

        // Assignment and increment operators.
        const char c0 = body[a];
        const char c1 = a + 1 < body.size() ? body[a + 1] : '\0';
        const char c2 = a + 2 < body.size() ? body[a + 2] : '\0';
        if (c0 == '=' && c1 != '=')
            return true;
        if ((c0 == '+' || c0 == '-') && c1 == c0)
            return true;
        if ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/' ||
             c0 == '%' || c0 == '|' || c0 == '&' || c0 == '^') &&
            c1 == '=')
            return true;
        if ((c0 == '<' || c0 == '>') && c1 == c0 && c2 == '=')
            return true;

        // Mutating container/atomic call: name.clear(), name.push_back().
        // A call through `->` mutates the pointee, not the member itself,
        // so it deliberately does not count.
        if (c0 == '.') {
            size_t m = skipSpaces(body, a + 1);
            const std::string call = wordAt(body, m);
            const size_t open = skipSpaces(body, m + call.size());
            if (open < body.size() && body[open] == '(') {
                for (const char *mc : kMutatingCalls) {
                    if (call == mc)
                        return true;
                }
            }
        }
    }
    return false;
}

void
parseHeader(const std::string &path, const std::string &content,
            TreeModel &model)
{
    const std::string stripped = stripCode(content);
    const std::vector<RawClass> raw = findClasses(stripped);

    // Innermost enclosing class for nesting-qualified names.
    std::vector<int> parent(raw.size(), -1);
    for (size_t i = 0; i < raw.size(); ++i) {
        for (size_t j = 0; j < raw.size(); ++j) {
            if (i == j)
                continue;
            if (raw[j].bodyOpen < raw[i].keywordPos &&
                raw[j].bodyClose > raw[i].bodyClose) {
                if (parent[i] < 0 ||
                    raw[j].bodyOpen >
                        raw[static_cast<size_t>(parent[i])].bodyOpen)
                    parent[i] = static_cast<int>(j);
            }
        }
    }
    auto qualifiedName = [&](size_t i) {
        std::string q = raw[i].name;
        for (int p = parent[i]; p >= 0;
             p = parent[static_cast<size_t>(p)])
            q = raw[static_cast<size_t>(p)].name + "::" + q;
        return q;
    };

    const size_t firstClass = model.classes.size();
    for (size_t i = 0; i < raw.size(); ++i) {
        const RawClass &rc = raw[i];
        ClassModel cm;
        cm.name = rc.name;
        cm.qualified = qualifiedName(i);
        cm.file = path;
        cm.line = lineOf(stripped, rc.keywordPos);
        cm.clocked = rc.clocked;
        cm.nested = parent[i] >= 0;
        if (parent[i] >= 0)
            cm.outer = raw[static_cast<size_t>(parent[i])].name;

        // Direct body: children blanked so their members/annotations are
        // attributed to the child, not to this class.
        std::string body =
            stripped.substr(rc.bodyOpen + 1, rc.bodyClose - rc.bodyOpen - 1);
        const size_t base = rc.bodyOpen + 1;
        for (size_t j = 0; j < raw.size(); ++j) {
            if (parent[j] != static_cast<int>(i))
                continue;
            for (size_t k = raw[j].keywordPos;
                 k <= raw[j].bodyClose && k >= base &&
                 k - base < body.size();
                 ++k) {
                if (body[k - base] != '\n')
                    body[k - base] = ' ';
            }
        }

        const int lineBase = lineOf(stripped, base);
        std::vector<Annotation> anns =
            extractAnnotations(body, content, base);
        for (Annotation &a : anns)
            a.line = lineBase + a.line - 1;

        cm.declaresSerialize = containsWord(body, "serializeState");
        cm.declaresOwnership = containsWord(body, "declareOwnership");

        std::vector<ParsedMember> members;
        scanClassBody(body, lineBase, rc.name, path, members, model);

        // Bind each annotation to the next member declared after it.
        for (const Annotation &a : anns) {
            bool bound = false;
            for (ParsedMember &pm : members) {
                if (pm.stmtEnd <= a.end)
                    continue;
                if (!pm.m.excluded) {
                    pm.m.excluded = true;
                    pm.m.category = a.category;
                    pm.m.reason = a.reason;
                    pm.m.excludeLine = a.line;
                    bound = true;
                }
                break;
            }
            if (!bound)
                cm.danglingExcludeLines.push_back(a.line);
        }
        for (ParsedMember &pm : members)
            cm.members.push_back(std::move(pm.m));
        model.classes.push_back(std::move(cm));
    }

    // Nested structs used as member storage: fixpoint over the new
    // classes so chains (Router -> InputPort -> VirtualChannel) resolve.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = firstClass; i < model.classes.size(); ++i) {
            ClassModel &nested = model.classes[i];
            if (!nested.nested || nested.usedAsMemberType)
                continue;
            for (size_t j = firstClass; j < model.classes.size(); ++j) {
                const ClassModel &user = model.classes[j];
                if (&user == &nested)
                    continue;
                const bool userCounts =
                    !user.nested || user.usedAsMemberType;
                if (!userCounts)
                    continue;
                for (const MemberModel &m : user.members) {
                    if (containsWord(m.declText, nested.name)) {
                        nested.usedAsMemberType = true;
                        changed = true;
                        break;
                    }
                }
                if (nested.usedAsMemberType)
                    break;
            }
        }
    }
}

void
parseMethodBodies(const std::string &path, const std::string &content,
                  TreeModel &model)
{
    const std::string s = stripCode(content);
    for (size_t i = s.find("::"); i != std::string::npos;
         i = s.find("::", i + 2)) {
        size_t cb = i;
        while (cb > 0 && isWordChar(s[cb - 1]))
            --cb;
        const std::string cls = s.substr(cb, i - cb);
        if (cls.empty())
            continue;
        size_t mp = i + 2;
        const std::string method = wordAt(s, mp);
        if (method.empty())
            continue;
        size_t after = skipSpaces(s, mp + method.size());
        if (after + 1 < s.size() && s[after] == ':' && s[after + 1] == ':')
            continue;  // middle of A::B::m; the later "::" handles it
        if (after >= s.size() || s[after] != '(')
            continue;
        const size_t closeParen = matchParen(s, after);
        if (closeParen == std::string::npos)
            continue;

        // Scan past const/noexcept/override/trailing-return to the body.
        size_t p = closeParen + 1;
        size_t open = std::string::npos;
        while (p < s.size()) {
            p = skipSpaces(s, p);
            if (p >= s.size())
                break;
            const char c = s[p];
            if (c == '{') {
                open = p;
                break;
            }
            if (c == ';' || c == '=')
                break;  // declaration / = default / = delete
            if (c == ':' && (p + 1 >= s.size() || s[p + 1] != ':')) {
                // Constructor initializer list: skip items to the body.
                ++p;
                while (p < s.size()) {
                    p = skipSpaces(s, p);
                    if (p < s.size() && (s[p] == '(' || s[p] == '{')) {
                        const size_t cl = s[p] == '('
                                              ? matchParen(s, p)
                                              : matchBrace(s, p);
                        if (cl == std::string::npos)
                            break;
                        p = cl + 1;
                        p = skipSpaces(s, p);
                        if (p < s.size() && s[p] == ',') {
                            ++p;
                            continue;
                        }
                        if (p < s.size() && s[p] == '{')
                            open = p;
                        break;
                    }
                    // Item name / template args.
                    if (p < s.size() &&
                        (isWordChar(s[p]) || s[p] == ':' || s[p] == '<' ||
                         s[p] == '>')) {
                        ++p;
                        continue;
                    }
                    break;
                }
                break;
            }
            if (isWordChar(c) || c == '-' || c == '>' || c == '&' ||
                c == '*' || c == '<' || c == ',' || c == ')') {
                ++p;
                continue;
            }
            break;
        }
        if (open == std::string::npos)
            continue;
        const size_t close = matchBrace(s, open);
        if (close == std::string::npos)
            continue;

        MethodBody mb;
        mb.cls = cls;
        mb.name = method;
        if (cls == "StateSerializer" && method == "io") {
            // External walk: io(Flit &f) serializes struct Flit.
            const std::string args =
                s.substr(after + 1, closeParen - after - 1);
            const size_t amp = args.find('&');
            if (amp != std::string::npos) {
                size_t te = amp;
                while (te > 0 && std::isspace(
                                     static_cast<unsigned char>(args[te - 1])))
                    --te;
                size_t tb = te;
                while (tb > 0 && isWordChar(args[tb - 1]))
                    --tb;
                mb.name = "io#" + args.substr(tb, te - tb);
            }
        }
        mb.text = s.substr(open + 1, close - open - 1);
        mb.file = path;
        mb.line = lineOf(s, cb);
        model.methods.push_back(std::move(mb));
    }
}

TreeModel
buildTreeModel(const std::string &root, std::string *err)
{
    namespace fs = std::filesystem;
    TreeModel model;
    std::vector<std::string> files;
    const fs::path base = fs::path(root) / "src";
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
        if (err)
            *err = "no src/ directory under " + root;
        return model;
    }
    for (auto it = fs::recursive_directory_iterator(base, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec))
            continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        files.push_back(fs::relative(it->path(), root, ec).generic_string());
    }
    std::sort(files.begin(), files.end());
    for (const std::string &rel : files) {
        std::ifstream in(fs::path(root) / rel,
                         std::ios::in | std::ios::binary);
        if (!in) {
            if (err)
                *err = "cannot read " + rel;
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string content = buf.str();
        if (rel.size() > 3 &&
            rel.compare(rel.size() - 3, 3, ".hh") == 0)
            parseHeader(rel, content, model);
        parseMethodBodies(rel, content, model);
    }
    return model;
}

}  // namespace statecheck
}  // namespace nord

/**
 * @file
 * nord-statecheck rule layer: cross-check the parsed state model
 * (state_model.hh) against three ground truths.
 *
 *  1. serialize-coverage: every non-static, non-const, non-reference data
 *     member of an in-scope class must appear in that class's
 *     serializeState() walk closure or carry NORD_STATE_EXCLUDE.
 *  2. ownership-coverage: a Clocked class whose tick()/commit closure
 *     mutates member state must claim an ownership domain (owns(...)),
 *     and one that reaches through component pointers on the tick path
 *     must declare channel access (writes/reads/writesAny/readsAny).
 *  3. annotation legality: each NORD_STATE_EXCLUDE category obeys its
 *     rule (see common/state_annotations.hh); annotations that bind to
 *     no member or name an unknown category are findings themselves.
 *
 * A class is in scope when it derives from Clocked, declares
 * serializeState, carries an annotation, or is serialized externally via
 * StateSerializer::io(T&). Members of nested structs used as member
 * storage are checked against the outermost class's walk.
 */

#ifndef NORD_VERIFY_STATECHECK_STATE_CHECK_HH
#define NORD_VERIFY_STATECHECK_STATE_CHECK_HH

#include <string>
#include <vector>

#include "verify/statecheck/state_model.hh"

namespace nord {
namespace statecheck {

/** One rule violation. */
struct CheckFinding
{
    std::string file;
    int line = 0;
    std::string rule;      ///< e.g. "unserialized-member"
    std::string severity;  ///< "error" (all current rules gate CI)
    std::string message;
};

/// Rule identifiers (kept in one place for the CLI and the tests).
extern const char kRuleUnserializedMember[];
extern const char kRuleExcludeButSerialized[];
extern const char kRuleBadExcludeCategory[];
extern const char kRuleDanglingExclude[];
extern const char kRuleMissingSerializeBody[];
extern const char kRuleUndeclaredTickMutation[];
extern const char kRuleUndeclaredChannelUse[];

/** Run every rule over @p model; findings sorted by file/line. */
std::vector<CheckFinding> checkTree(const TreeModel &model);

/**
 * Transitive body text of @p cls methods reachable from any seed name in
 * @p seeds (e.g. {"serializeState"} or {"tick", "commit"}). Exposed for
 * the unit tests.
 */
std::string methodClosure(const TreeModel &model, const std::string &cls,
                          const std::vector<std::string> &seeds);

/**
 * Fixpoint-expand @p walk with the bodies of @p cls methods it calls, so
 * accessor-based serialization (io(Rng&) -> rawState()) credits the
 * members the accessors touch.
 */
std::string expandWalk(const TreeModel &model, const std::string &cls,
                       std::string walk);

}  // namespace statecheck
}  // namespace nord

#endif  // NORD_VERIFY_STATECHECK_STATE_CHECK_HH

/**
 * @file
 * Invariant auditor implementation.
 */

#include "verify/invariant_auditor.hh"

#include <cstdio>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "network/noc_system.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

using detail::formatString;

InvariantAuditor::InvariantAuditor(const NocSystem &sys,
                                   const VerifyConfig &config)
    : sys_(sys), config_(config)
{
}

const char *
InvariantAuditor::kindName(Kind k)
{
    switch (k) {
      case Kind::kFlitConservation: return "flit-conservation";
      case Kind::kCreditConservation: return "credit-conservation";
      case Kind::kVcState: return "vc-state";
      case Kind::kPgSafety: return "pg-safety";
      case Kind::kLiveness: return "liveness";
    }
    return "unknown";
}

bool
InvariantAuditor::hasViolation(Kind k) const
{
    for (const Violation &v : violations_) {
        if (v.kind == k)
            return true;
    }
    return false;
}

size_t
InvariantAuditor::unexpectedViolations() const
{
    size_t count = 0;
    for (const Violation &v : violations_) {
        if (!v.expected)
            ++count;
    }
    return count;
}

void
InvariantAuditor::expectCreditDeficit(NodeId node, Direction dir, VcId vc)
{
    ++expectedLeaks_[leakKey(node, dir, vc)];
}

void
InvariantAuditor::report(Kind kind, NodeId node, Cycle now,
                         std::string diagnosis, bool expected)
{
    violations_.push_back({kind, node, now, std::move(diagnosis), expected});
}

std::uint64_t
InvariantAuditor::inNetworkFlits() const
{
    // Eaten flits (discarded at a dead router's input stage) left the
    // network without being ejected.
    const NetworkStats &stats = sys_.stats();
    return stats.flitsInjected() - stats.flitsEjected() -
           stats.flitsEaten();
}

std::uint64_t
InvariantAuditor::progressCounter() const
{
    const ActivityCounters totals = sys_.stats().totals();
    return totals.linkTraversals + totals.bufferReads +
           totals.bypassForwards + sys_.stats().flitsInjected() +
           sys_.stats().flitsEjected() + sys_.stats().flitsEaten();
}

// --- Invariant 1: flit conservation ---------------------------------------

void
InvariantAuditor::checkFlitConservation(Cycle now)
{
    const int n = sys_.config().numNodes();
    std::uint64_t inBuffers = 0;
    std::uint64_t inLinks = 0;
    std::uint64_t inEjectQs = 0;
    std::uint64_t inLatches = 0;
    std::uint64_t inStage3 = 0;
    for (NodeId id = 0; id < n; ++id) {
        const Router &r = sys_.router(id);
        const NetworkInterface &ni = sys_.ni(id);
        inBuffers += static_cast<std::uint64_t>(r.bufferedFlits());
        inEjectQs += ni.ejectQueueDepth();
        inLatches += static_cast<std::uint64_t>(ni.latchOccupancy());
        inStage3 += ni.stage3Depth();
        for (int d = 0; d < kNumMeshDirs; ++d) {
            const FlitLink *link = r.outputLink(indexDir(d));
            if (link)
                inLinks += link->inFlight();
        }
    }
    const std::uint64_t counted =
        inBuffers + inLinks + inEjectQs + inLatches + inStage3;
    const std::uint64_t expected = inNetworkFlits();
    if (counted != expected) {
        report(Kind::kFlitConservation, kInvalidNode, now,
               formatString(
                   "flit conservation broken: %llu flits in network "
                   "(injected %llu - ejected %llu - eaten %llu) but %llu "
                   "accounted for "
                   "(buffers %llu, links %llu, eject queues %llu, bypass "
                   "latches %llu, stage-3 %llu); %llu flit(s) %s",
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(
                       sys_.stats().flitsInjected()),
                   static_cast<unsigned long long>(
                       sys_.stats().flitsEjected()),
                   static_cast<unsigned long long>(
                       sys_.stats().flitsEaten()),
                   static_cast<unsigned long long>(counted),
                   static_cast<unsigned long long>(inBuffers),
                   static_cast<unsigned long long>(inLinks),
                   static_cast<unsigned long long>(inEjectQs),
                   static_cast<unsigned long long>(inLatches),
                   static_cast<unsigned long long>(inStage3),
                   static_cast<unsigned long long>(
                       counted > expected ? counted - expected
                                          : expected - counted),
                   counted > expected ? "duplicated" : "lost"));
    }
}

// --- Invariant 2: credit conservation -------------------------------------

void
InvariantAuditor::checkCreditConservation(Cycle now)
{
    const NocConfig &cfg = sys_.config();
    const int n = cfg.numNodes();
    const bool isNord = cfg.design == PgDesign::kNord;

    for (NodeId id = 0; id < n; ++id) {
        const Router &up = sys_.router(id);
        const NetworkInterface &upNi = sys_.ni(id);

        for (int d = 0; d < kNumMeshDirs; ++d) {
            const Direction dir = indexDir(d);
            const Router *down = up.neighborRouter(dir);
            if (!down)
                continue;
            const FlitLink *flink = up.outputLink(dir);
            const CreditLink *clink =
                down->creditReturnLink(opposite(dir));
            const bool ringEdge =
                isNord && dir == sys_.ring().bypassOutport(id);
            // Section 4.3 credit re-adjustment: while the upstream sees
            // the ring successor as gated, its credit view shrinks to the
            // single NI bypass latch slot per VC.
            const int expected = ringEdge && up.outputGatedView(dir)
                ? 1 : cfg.bufferDepth;
            const NetworkInterface &downNi = sys_.ni(down->id());

            for (VcId v = 0; v < cfg.numVcs; ++v) {
                int sum = up.creditCount(dir, v);
                if (clink)
                    sum += clink->inFlightForVc(v);
                sum += flink->inFlightForVc(v);
                sum += down->probeVc(opposite(dir), v).occupancy;
                if (ringEdge) {
                    // Flits redirected into the successor's bypass latch,
                    // plus flits staged in this NI that already reserved
                    // a credit of this link but have not hit the wire.
                    sum += static_cast<int>(downNi.latchSlotDepth(v));
                    sum += upNi.stage3CountForVc(v);
                }
                if (sum != expected) {
                    // A deficit the FaultInjector announced is an expected
                    // consequence of the campaign, not a bug; the recover
                    // policy restores the upstream counter in place.
                    bool announced = false;
                    bool repaired = false;
                    if (sum < expected) {
                        const int deficit = expected - sum;
                        auto it = expectedLeaks_.find(leakKey(id, dir, v));
                        if (it != expectedLeaks_.end() &&
                            it->second >= deficit) {
                            announced = true;
                            if (config_.policy == AuditPolicy::kRecover &&
                                mutableSys_) {
                                mutableSys_->router(id).repairCredits(
                                    dir, v, deficit);
                                it->second -= deficit;
                                if (it->second == 0)
                                    expectedLeaks_.erase(it);
                                recovered_ +=
                                    static_cast<std::uint64_t>(deficit);
                                repaired = true;
                            }
                        }
                    }
                    report(Kind::kCreditConservation, id, now,
                           formatString(
                               "credit conservation broken on link %d->%d "
                               "(%s) vc %d: credits %d + in-flight credits "
                               "%d + in-flight flits %d + downstream "
                               "occupancy %d%s = %d, expected %d "
                               "(gatedView=%d ringEdge=%d)%s",
                               id, down->id(), dirName(dir), v,
                               up.creditCount(dir, v),
                               clink ? clink->inFlightForVc(v) : 0,
                               flink->inFlightForVc(v),
                               down->probeVc(opposite(dir), v).occupancy,
                               ringEdge ? " + latch/stage3" : "",
                               sum, expected,
                               up.outputGatedView(dir) ? 1 : 0,
                               ringEdge ? 1 : 0,
                               repaired ? " [injected leak, repaired]"
                               : announced ? " [injected leak]" : ""),
                           announced);
                }
            }
        }

        // Local injection port: the NI's credit counter plus the local
        // input VC occupancy must equal the buffer depth (credit return
        // is combinational, so no in-flight term).
        for (VcId v = 0; v < cfg.numVcs; ++v) {
            const int sum = upNi.localCredit(v) +
                up.probeVc(Direction::kLocal, v).occupancy;
            if (sum != cfg.bufferDepth) {
                report(Kind::kCreditConservation, id, now,
                       formatString(
                           "local-port credit conservation broken at "
                           "router %d vc %d: NI credits %d + local buffer "
                           "occupancy %d != depth %d",
                           id, v, upNi.localCredit(v),
                           up.probeVc(Direction::kLocal, v).occupancy,
                           cfg.bufferDepth));
            }
        }
    }
}

// --- Invariant 3: VC state-machine legality --------------------------------

void
InvariantAuditor::checkVcStates(Cycle now)
{
    const NocConfig &cfg = sys_.config();
    const int n = cfg.numNodes();
    const bool isNord = cfg.design == PgDesign::kNord;

    for (NodeId id = 0; id < n; ++id) {
        const Router &r = sys_.router(id);

        // holders[o][v]: active input VCs that claim output VC (o, v).
        int holders[kNumPorts][64] = {};
        NORD_ASSERT(cfg.numVcs <= 64, "too many VCs for the auditor");

        for (int p = 0; p < kNumPorts; ++p) {
            for (VcId v = 0; v < cfg.numVcs; ++v) {
                const Router::VcProbe vc = r.probeVc(indexDir(p), v);
                switch (vc.state) {
                  case Router::VcState::kIdle:
                    if (vc.outVc != kInvalidVc || vc.sentAny) {
                        report(Kind::kVcState, id, now,
                               formatString(
                                   "router %d port %s vc %d idle but "
                                   "outVc=%d sentAny=%d",
                                   id, dirName(indexDir(p)), v, vc.outVc,
                                   vc.sentAny ? 1 : 0));
                    }
                    // A freshly arrived packet may sit one cycle in an
                    // idle VC before RC; its front flit must be a head.
                    if (vc.occupancy > 0 && !vc.frontIsHead) {
                        report(Kind::kVcState, id, now,
                               formatString(
                                   "router %d port %s vc %d idle with a "
                                   "non-head flit buffered (orphaned "
                                   "body/tail)",
                                   id, dirName(indexDir(p)), v));
                    }
                    break;
                  case Router::VcState::kRouting:
                    report(Kind::kVcState, id, now,
                           formatString(
                               "router %d port %s vc %d in unreachable "
                               "state kRouting",
                               id, dirName(indexDir(p)), v));
                    break;
                  case Router::VcState::kVcAlloc:
                    if (vc.occupancy == 0 || !vc.frontIsHead ||
                        vc.outVc != kInvalidVc || vc.sentAny) {
                        report(Kind::kVcState, id, now,
                               formatString(
                                   "router %d port %s vc %d in VcAlloc "
                                   "with occupancy=%d frontIsHead=%d "
                                   "outVc=%d sentAny=%d",
                                   id, dirName(indexDir(p)), v,
                                   vc.occupancy, vc.frontIsHead ? 1 : 0,
                                   vc.outVc, vc.sentAny ? 1 : 0));
                    }
                    break;
                  case Router::VcState::kActive: {
                    if (vc.outVc < 0 || vc.outVc >= cfg.numVcs) {
                        report(Kind::kVcState, id, now,
                               formatString(
                                   "router %d port %s vc %d active with "
                                   "invalid output VC %d",
                                   id, dirName(indexDir(p)), v, vc.outVc));
                        break;
                    }
                    ++holders[dirIndex(vc.outPort)][vc.outVc];
                    if (!r.outVcBusy(vc.outPort, vc.outVc)) {
                        report(Kind::kVcState, id, now,
                               formatString(
                                   "router %d port %s vc %d holds output "
                                   "VC %s/%d that is not marked busy",
                                   id, dirName(indexDir(p)), v,
                                   dirName(vc.outPort), vc.outVc));
                    }
                    // Tail-flit accounting: before the first flit leaves
                    // the front must be the head; afterwards the head is
                    // gone and only body/tail flits may be buffered.
                    if (vc.occupancy > 0 &&
                        vc.frontIsHead == vc.sentAny) {
                        report(Kind::kVcState, id, now,
                               formatString(
                                   "router %d port %s vc %d active with "
                                   "sentAny=%d but frontIsHead=%d (tail "
                                   "accounting broken)",
                                   id, dirName(indexDir(p)), v,
                                   vc.sentAny ? 1 : 0,
                                   vc.frontIsHead ? 1 : 0));
                    }
                    break;
                  }
                }
            }
        }

        // Output-VC ownership: held at most once; every busy VC has an
        // owner (pipeline input VC, or the NI bypass datapath on the
        // Bypass Outport).
        for (int o = 0; o < kNumPorts; ++o) {
            const Direction dir = indexDir(o);
            const bool bypassOut =
                isNord && dir == sys_.ring().bypassOutport(id);
            for (VcId v = 0; v < cfg.numVcs; ++v) {
                if (holders[o][v] > 1) {
                    report(Kind::kVcState, id, now,
                           formatString(
                               "router %d output VC %s/%d held by %d "
                               "input VCs simultaneously",
                               id, dirName(dir), v, holders[o][v]));
                }
                if (r.outVcBusy(dir, v) && holders[o][v] == 0 &&
                    !(bypassOut && sys_.ni(id).holdsBypassOutVc(v))) {
                    report(Kind::kVcState, id, now,
                           formatString(
                               "router %d leaked output VC %s/%d (busy "
                               "with no owner)",
                               id, dirName(dir), v));
                }
            }
        }
    }
}

// --- Invariant 4: power-gating handshake safety ----------------------------

void
InvariantAuditor::checkPgSafety(Cycle now, bool controllersSettled)
{
    const NocConfig &cfg = sys_.config();
    const int n = cfg.numNodes();
    const bool isNord = cfg.design == PgDesign::kNord;

    for (NodeId id = 0; id < n; ++id) {
        const Router &r = sys_.router(id);
        const PowerState st = r.powerState();

        // A kDrain->off transition (and the whole gated residency) is
        // only legal with a provably empty datapath.
        if (st != PowerState::kOn && !r.datapathEmpty()) {
            report(Kind::kPgSafety, id, now,
                   formatString(
                       "router %d is %s with %d flit(s) still buffered in "
                       "its datapath (gated while non-empty)",
                       id, powerStateName(st), r.bufferedFlits()));
        }

        // No flit may be in flight toward a router that is not fully on,
        // except on the NoRD bypass-ring edge (which the downstream NI
        // latches without powering the router).
        for (int d = 0; d < kNumMeshDirs; ++d) {
            const Direction dir = indexDir(d);
            const Router *down = r.neighborRouter(dir);
            const FlitLink *link = r.outputLink(dir);
            if (!down || !link || link->empty())
                continue;
            if (down->powerState() == PowerState::kOn)
                continue;
            const bool bypassEdge =
                isNord && dir == sys_.ring().bypassOutport(id);
            if (!bypassEdge) {
                report(Kind::kPgSafety, id, now,
                       formatString(
                           "%zu flit(s) in flight from router %d toward "
                           "router %d (%s) which is %s -- they would "
                           "arrive at a gated pipeline",
                           link->inFlight(), id, down->id(), dirName(dir),
                           powerStateName(down->powerState())));
            }
        }

        // Lost wakeup: once every controller has evaluated its policy
        // this cycle, a latched WU request on a gated conventional router
        // must have started the Vdd ramp. (NoRD ignores WU by design --
        // the bypass transports the packet instead.)
        if (controllersSettled && (cfg.design == PgDesign::kConvPg ||
                                   cfg.design == PgDesign::kConvPgOpt)) {
            const PgController &ctl = sys_.controller(id);
            if (ctl.state() == PowerState::kOff &&
                ctl.wakeRequestPending()) {
                // An injected suppression (or a dead controller) explains
                // the lost wakeup; the watchdog recovers the former.
                const bool injected =
                    ctl.dead() || ctl.wakeupSuppressed(now);
                report(Kind::kPgSafety, id, now,
                       formatString(
                           "router %d has a pending wakeup request but "
                           "its controller stayed off (wakeup lost)%s",
                           id,
                           injected ? " [injected fault; watchdog "
                                      "pending]" : ""),
                       injected);
            }
        }
    }
}

// --- Invariant 5: liveness -------------------------------------------------

std::string
InvariantAuditor::routeDiagnosis(const Flit &flit, Cycle now) const
{
    const MeshTopology &mesh = sys_.mesh();
    std::string out = formatString(
        "packet %llu seq %d (%d->%d, hops %d, misroutes %d, escape %d, "
        "injected at %llu, age %llu):",
        static_cast<unsigned long long>(flit.packet), flit.seq, flit.src,
        flit.dst, flit.hops, flit.misroutes, flit.onEscape ? 1 : 0,
        static_cast<unsigned long long>(flit.injectedAt),
        static_cast<unsigned long long>(now - flit.injectedAt));
    // Walk the minimal XY path: the canonical route the packet would take
    // with everything powered on; the PG states along it explain most
    // stalls even for adaptively routed packets.
    NodeId at = flit.src;
    for (int hop = 0; hop < mesh.numNodes(); ++hop) {
        const Router &r = sys_.router(at);
        out += formatString(" [%d %s occ=%d]", at,
                            powerStateName(r.powerState()),
                            r.bufferedFlits());
        if (at == flit.dst)
            break;
        if (mesh.colOf(at) != mesh.colOf(flit.dst)) {
            at = mesh.neighbor(at, mesh.colOf(flit.dst) > mesh.colOf(at)
                                       ? Direction::kEast
                                       : Direction::kWest);
        } else {
            at = mesh.neighbor(at, mesh.rowOf(flit.dst) > mesh.rowOf(at)
                                       ? Direction::kSouth
                                       : Direction::kNorth);
        }
    }
    // The route the flit *actually* took (every router and NI it touched,
    // newest last), which the minimal-path walk above cannot show for
    // adaptively routed or bypassing packets.
    out += formatString("; route history (%slast %d):",
                        flit.visitedCount >= kRouteHistoryDepth
                            ? "truncated, " : "",
                        static_cast<int>(flit.visitedCount));
    for (int i = 0; i < flit.visitedCount; ++i)
        out += formatString(" %d", static_cast<int>(flit.visited[i]));
    return out;
}

std::string
InvariantAuditor::stallDiagnosis(Cycle now) const
{
    const int n = sys_.config().numNodes();
    std::string out = formatString(
        "%llu flit(s) in network at cycle %llu; non-idle routers:",
        static_cast<unsigned long long>(inNetworkFlits()),
        static_cast<unsigned long long>(now));
    for (NodeId id = 0; id < n; ++id) {
        const Router &r = sys_.router(id);
        const NetworkInterface &ni = sys_.ni(id);
        const int held = r.bufferedFlits() + ni.latchOccupancy() +
                         static_cast<int>(ni.stage3Depth());
        if (held == 0 && r.powerState() == PowerState::kOn)
            continue;
        out += formatString(" [%d %s buf=%d latch=%d s3=%zu]", id,
                            powerStateName(r.powerState()),
                            r.bufferedFlits(), ni.latchOccupancy(),
                            ni.stage3Depth());
    }
    return out;
}

void
InvariantAuditor::checkFlitAges(Cycle now)
{
    const int n = sys_.config().numNodes();
    bool found = false;
    Flit oldest;
    Cycle oldestAge = 0;
    const auto consider = [&](const Flit &f) {
        const Cycle age = now >= f.injectedAt ? now - f.injectedAt : 0;
        if (!found || age > oldestAge) {
            found = true;
            oldest = f;
            oldestAge = age;
        }
    };
    for (NodeId id = 0; id < n; ++id) {
        const Router &r = sys_.router(id);
        r.forEachBufferedFlit(
            [&](Direction, VcId, const Flit &f) { consider(f); });
        sys_.ni(id).forEachPendingFlit(consider);
        for (int d = 0; d < kNumMeshDirs; ++d) {
            const FlitLink *link = r.outputLink(indexDir(d));
            if (link)
                link->forEachInFlight(consider);
        }
    }
    if (found && oldestAge > config_.maxFlitAge) {
        report(Kind::kLiveness, oldest.src, now,
               formatString("flit exceeded the age bound of %llu cycles "
                            "(livelock suspected); ",
                            static_cast<unsigned long long>(
                                config_.maxFlitAge)) +
                   routeDiagnosis(oldest, now));
    }
}

void
InvariantAuditor::watchdog(Cycle now)
{
    const std::uint64_t progress = progressCounter();
    if (inNetworkFlits() == 0 || progress != lastProgress_) {
        lastProgress_ = progress;
        lastProgressCycle_ = now;
        stallReported_ = false;
        return;
    }
    if (!stallReported_ && now - lastProgressCycle_ > config_.stallThreshold) {
        stallReported_ = true;
        report(Kind::kLiveness, kInvalidNode, now,
               formatString("no forward progress for %llu cycles "
                            "(deadlock suspected); ",
                            static_cast<unsigned long long>(
                                now - lastProgressCycle_)) +
                   stallDiagnosis(now));
    }
}

// --- Driver ----------------------------------------------------------------

size_t
InvariantAuditor::sweep(Cycle now, bool controllersSettled)
{
    const size_t before = violations_.size();
    ++sweeps_;
    checkFlitConservation(now);
    checkCreditConservation(now);
    checkVcStates(now);
    checkPgSafety(now, controllersSettled);
    checkFlitAges(now);
    return violations_.size() - before;
}

void
InvariantAuditor::applyPolicy(size_t before, Cycle now)
{
    if (violations_.size() == before)
        return;
    const Violation *firstUnexpected = nullptr;
    size_t newUnexpected = 0;
    for (size_t i = before; i < violations_.size(); ++i) {
        const Violation &v = violations_[i];
        if (!v.expected) {
            ++newUnexpected;
            if (!firstUnexpected)
                firstUnexpected = &v;
        }
        // kAbort stays quiet about expected violations (they are part of
        // the configured fault campaign); kDiagnose narrates everything;
        // kRecover narrates only what it could not attribute or repair.
        const bool print =
            config_.policy == AuditPolicy::kDiagnose ? true : !v.expected;
        if (print) {
            std::fprintf(diagStream(), "[auditor] %s%s: %s\n",
                         kindName(v.kind),
                         v.expected ? " (expected)" : "",
                         v.diagnosis.c_str());
        }
    }
    if (config_.policy != AuditPolicy::kAbort || newUnexpected == 0)
        return;
    sys_.dumpState(diagStream());
    NORD_PANIC("invariant audit failed at cycle %llu with %zu new "
               "unexpected violation(s); first: [%s] %s",
               static_cast<unsigned long long>(now),
               newUnexpected, kindName(firstUnexpected->kind),
               firstUnexpected->diagnosis.c_str());
}

void
InvariantAuditor::tick(Cycle now)
{
    if (!enabled())
        return;
    const size_t before = violations_.size();
    watchdog(now);
    if (now % config_.interval == 0)
        sweep(now, true);
    applyPolicy(before, now);
}

void
InvariantAuditor::onPowerTransition(Cycle now, PowerState, PowerState)
{
    if (!enabled() || !config_.sweepOnTransition)
        return;
    const size_t before = violations_.size();
    // Mid-cycle: later controllers have not evaluated their policies yet,
    // so the lost-wakeup check would raise false alarms.
    sweep(now, false);
    applyPolicy(before, now);
}

void
InvariantAuditor::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("AUDT"));
    s.ioSequence(violations_, [&s](Violation &v) {
        s.io(v.kind);
        s.io(v.node);
        s.io(v.cycle);
        s.io(v.diagnosis);
        s.io(v.expected);
    });
    s.io(sweeps_);
    s.ioMap(expectedLeaks_);
    s.io(recovered_);
    s.io(lastProgress_);
    s.io(lastProgressCycle_);
    s.io(stallReported_);
}

void
InvariantAuditor::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("recorded violations, leak expectations, watchdog state");
    d.readsAny();
    d.writesAny();  // kRecover repairs credits in place
}

}  // namespace nord

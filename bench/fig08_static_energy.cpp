/**
 * @file
 * Figure 8 reproduction: router static energy per PARSEC benchmark,
 * normalized to No_PG. Static energy includes the power-gating overhead
 * charged to the routers (waking cycles leak at full power; gated cycles
 * leak only the always-on residue).
 *
 * Paper anchors: Conv_PG leaves 48.8% (51.2% savings), Conv_PG_OPT 53.0%
 * (47.0% savings), NoRD 37.1% (62.9% savings); NoRD relative savings
 * 23.9% vs Conv_PG and 29.9% vs Conv_PG_OPT.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    auto campaign = runCampaign(pm);

    std::printf("=== Figure 8: static energy normalized to No_PG ===\n");
    std::printf("%-14s %10s %12s %10s\n", "benchmark", "Conv_PG",
                "Conv_PG_OPT", "NoRD");
    double sums[4] = {0, 0, 0, 0};
    for (const CampaignRow &row : campaign) {
        const double base = row.byDesign[0].staticEnergy();
        std::printf("%-14s", row.benchmark.c_str());
        for (int d = 1; d < 4; ++d) {
            const double frac = row.byDesign[d].staticEnergy() / base;
            sums[d] += frac;
            std::printf(" %9.1f%%%s", 100.0 * frac, d == 2 ? "  " : "");
        }
        std::printf("\n");
    }
    const double n = static_cast<double>(campaign.size());
    std::printf("%-14s %9.1f%% %11.1f%% %9.1f%%\n", "AVG",
                100.0 * sums[1] / n, 100.0 * sums[2] / n,
                100.0 * sums[3] / n);
    std::printf("paper AVG:         48.8%%        53.0%%      37.1%%\n");
    std::printf("\nNoRD vs Conv_PG:     %5.1f%% further reduction "
                "(paper: 23.9%%)\n",
                100.0 * (1.0 - sums[3] / sums[1]));
    std::printf("NoRD vs Conv_PG_OPT: %5.1f%% further reduction "
                "(paper: 29.9%%)\n",
                100.0 * (1.0 - sums[3] / sums[2]));
    return 0;
}

/**
 * @file
 * Figure 11 reproduction: average packet latency per PARSEC benchmark
 * under the four designs.
 *
 * Paper anchors: relative to No_PG, Conv_PG degrades latency by 63.8%,
 * Conv_PG_OPT by 41.5%, and NoRD by only 15.2% on average (i.e. NoRD
 * improves over Conv_PG_OPT by 26.3%, the headline claim).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    auto campaign = runCampaign(pm);

    std::printf("=== Figure 11: average packet latency (cycles) ===\n");
    std::printf("%-14s %8s %9s %12s %8s\n", "benchmark", "No_PG",
                "Conv_PG", "Conv_PG_OPT", "NoRD");
    double degSum[4] = {0, 0, 0, 0};
    for (const CampaignRow &row : campaign) {
        std::printf("%-14s", row.benchmark.c_str());
        const double base = row.byDesign[0].avgLatency;
        for (int d = 0; d < 4; ++d) {
            std::printf(" %8.2f%s", row.byDesign[d].avgLatency,
                        d == 2 ? "    " : "");
            degSum[d] += row.byDesign[d].avgLatency / base - 1.0;
        }
        std::printf("\n");
    }
    const double n = static_cast<double>(campaign.size());
    std::printf("\nAVG latency degradation vs No_PG:\n");
    std::printf("  Conv_PG     +%.1f%% (paper: +63.8%%)\n",
                100.0 * degSum[1] / n);
    std::printf("  Conv_PG_OPT +%.1f%% (paper: +41.5%%)\n",
                100.0 * degSum[2] / n);
    std::printf("  NoRD        +%.1f%% (paper: +15.2%%)\n",
                100.0 * degSum[3] / n);
    std::printf("NoRD improvement over Conv_PG_OPT: %.1f%% "
                "(paper: 26.3%%)\n",
                100.0 * (1.0 - (1.0 + degSum[3] / n) /
                                   (1.0 + degSum[2] / n)));
    return 0;
}

/**
 * @file
 * Figure 1 reproduction: static power share of on-chip routers across
 * technology generations and voltages (1a), and the router power
 * decomposition at 45 nm / 1.0 V (1b).
 *
 * Paper anchors: 17.9% @ 65nm/1.2V, 35.4% @ 45nm/1.1V, 47.7% @ 32nm/1.0V;
 * Fig 1b: dynamic 62%, buffer static 21%, VA 7%, SA 2%, xbar 5%, clock 4%.
 */

#include <cstdio>

#include "power/power_model.hh"
#include "power/tech_params.hh"

int
main()
{
    using namespace nord;

    std::printf("=== Figure 1(a): router static power percentage ===\n");
    std::printf("%-6s %-6s %-10s\n", "node", "Vdd", "static%");
    const TechNode nodes[] = {TechNode::k65nm, TechNode::k45nm,
                              TechNode::k32nm};
    const double volts[] = {1.2, 1.1, 1.0};
    for (TechNode node : nodes) {
        for (double v : volts) {
            PowerModel pm(TechParams{node, v, 3.0});
            std::printf("%-6s %-6.1f %-10.1f\n", techNodeName(node), v,
                        100.0 * pm.staticShareAtReference());
        }
    }
    std::printf("paper: 17.9%% @65nm/1.2V, 35.4%% @45nm/1.1V, "
                "47.7%% @32nm/1.0V\n\n");

    std::printf("=== Figure 1(b): router power decomposition "
                "(45nm, 1.0V) ===\n");
    PowerModel pm(TechParams{TechNode::k45nm, 1.0, 3.0});
    const double staticShare = pm.staticShareAtReference();
    const double dynShare = 1.0 - staticShare;
    std::printf("%-16s %5.1f%%  (paper: 62%%)\n", "dynamic",
                100.0 * dynShare);
    std::printf("%-16s %5.1f%%  (paper: 21%%)\n", "buffer_static",
                100.0 * staticShare * PowerModel::kBufferStaticShare);
    std::printf("%-16s %5.1f%%  (paper:  7%%)\n", "VA_static",
                100.0 * staticShare * PowerModel::kVaStaticShare);
    std::printf("%-16s %5.1f%%  (paper:  2%%)\n", "SA_static",
                100.0 * staticShare * PowerModel::kSaStaticShare);
    std::printf("%-16s %5.1f%%  (paper:  5%%)\n", "Xbar_static",
                100.0 * staticShare * PowerModel::kXbarStaticShare);
    std::printf("%-16s %5.1f%%  (paper:  4%%)\n", "Clock_static",
                100.0 * staticShare * PowerModel::kClockStaticShare);
    return 0;
}

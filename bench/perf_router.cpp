/**
 * @file
 * Router-datapath throughput microbenchmark -> BENCH_router.json.
 *
 * Saturates a 4x4 No_PG mesh (every router busy every cycle, so idle
 * skipping is irrelevant by construction) and measures the flit hot
 * path: flits/sec, ns/flit and -- the arena's reason to exist --
 * allocs/cycle with pooled flit storage versus plain heap deques.
 */

#include "perf_util.hh"

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

/** Run saturated uniform-random traffic; returns flits injected. */
std::uint64_t
saturated(bool arena, Cycle cycles)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    cfg.perf.arena = arena;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.35, 11);
    sys.setWorkload(&traffic);
    sys.run(cycles);
    return sys.stats().flitsInjected();
}

}  // namespace
}  // namespace nord

int
main()
{
    using namespace nord;
    using namespace nord::perf;

    const Cycle cycles = quickMode() ? 10'000 : 40'000;

    JsonReport report("router");

    std::uint64_t flits = 0;
    const Sample pooled =
        measureSteady([&] { flits = saturated(true, cycles); });
    const Sample heap =
        measureSteady([&] { saturated(false, cycles); });

    report.addThroughput("router_sat_arena", pooled,
                         static_cast<double>(cycles),
                         static_cast<double>(flits));
    report.addThroughput("router_sat_heap", heap,
                         static_cast<double>(cycles),
                         static_cast<double>(flits));
    if (heap.allocs > 0) {
        report.add("router_sat_arena_alloc_ratio",
                   static_cast<double>(pooled.allocs) /
                       static_cast<double>(heap.allocs));
    }

    return report.write(outPath("BENCH_router.json")) ? 0 : 1;
}

/**
 * @file
 * Section 3.1 / 3.2 (and Figure 3) reproduction: router idleness and
 * idle-period fragmentation under the PARSEC workload models.
 *
 * Paper anchors: routers idle 30%~70% of the time (x264 lowest at 30.4%,
 * blackscholes highest at 71.2%); more than 61% of idle periods are at or
 * below the 10-cycle breakeven time.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    std::printf("=== Section 3.1/3.2: router idleness under No_PG ===\n");
    std::printf("%-14s %8s %10s %12s %12s\n", "benchmark", "idle%",
                "<=BET%", "inj(f/n/c)", "exec(cyc)");

    double idleSum = 0.0;
    double betSum = 0.0;
    double minIdle = 1.0;
    double maxIdle = 0.0;
    std::string minName;
    std::string maxName;
    for (const ParsecParams &p : parsecSuite()) {
        RunResult r = runParsec(PgDesign::kNoPg, p, pm);
        const double inj = static_cast<double>(r.delivered) * 3.0 /
                           (16.0 * static_cast<double>(r.cycles));
        std::printf("%-14s %7.1f%% %9.1f%% %12.4f %12llu\n",
                    p.name.c_str(), 100.0 * r.idleFraction,
                    100.0 * r.idleLeqBet, inj,
                    static_cast<unsigned long long>(r.cycles));
        idleSum += r.idleFraction;
        betSum += r.idleLeqBet;
        if (r.idleFraction < minIdle) {
            minIdle = r.idleFraction;
            minName = p.name;
        }
        if (r.idleFraction > maxIdle) {
            maxIdle = r.idleFraction;
            maxName = p.name;
        }
    }
    const double n = static_cast<double>(parsecSuite().size());
    std::printf("\naverage idleness: %.1f%%\n", 100.0 * idleSum / n);
    std::printf("lowest: %s %.1f%% (paper: x264 30.4%%)\n",
                minName.c_str(), 100.0 * minIdle);
    std::printf("highest: %s %.1f%% (paper: blackscholes 71.2%%)\n",
                maxName.c_str(), 100.0 * maxIdle);
    std::printf("idle periods <= BET: %.1f%% of all periods "
                "(paper: > 61%%)\n", 100.0 * betSum / n);
    return 0;
}

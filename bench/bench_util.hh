/**
 * @file
 * Shared experiment harness for the figure-reproduction benches.
 *
 * Each bench binary regenerates one table/figure of the paper. They all
 * run complete NocSystem simulations and reduce them to the paper's
 * metrics through the helpers here.
 *
 * Environment: set NORD_QUICK=1 to shrink the PARSEC scripts (faster,
 * noisier); figures keep their shape.
 */

#ifndef NORD_BENCH_BENCH_UTIL_HH
#define NORD_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define NORD_BENCH_HAVE_SUPERVISOR 1
#include <csignal>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif

#include "campaign/backoff.hh"
#include "campaign/exit_codes.hh"
#include "ckpt/checkpoint.hh"
#include "ckpt/state_serializer.hh"
#include "network/noc_system.hh"
#include "power/area_model.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace bench {

/** Metrics extracted from one finished simulation. */
struct RunResult
{
    PgDesign design = PgDesign::kNoPg;
    Cycle cycles = 0;             ///< simulated cycles (= execution time
                                  ///< for closed-loop runs)
    double avgLatency = 0.0;      ///< average packet latency (cycles)
    double avgHops = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t wakeups = 0;
    double idleFraction = 0.0;    ///< router datapath idleness
    double offFraction = 0.0;     ///< cycles spent gated off
    EnergyBreakdown energy;       ///< Joules over the whole run
    double idleLeqBet = 0.0;      ///< idle periods <= BET (fraction)

    /** Average NoC power in watts. */
    double powerW(const PowerModel &pm) const
    {
        return energy.averagePowerW(cycles, pm.tech().cycleTime());
    }

    /** Static + PG-overhead energy (the paper's "static energy"). */
    double staticEnergy() const
    {
        return energy.routerStatic + energy.pgOverhead;
    }
};

/** True when NORD_QUICK=1 (shorter PARSEC scripts). */
inline bool
quickMode()
{
    const char *env = std::getenv("NORD_QUICK");
    return env && env[0] == '1';
}

/** Table 1 configuration for one design. */
inline NocConfig
makeConfig(PgDesign design, int rows = 4, int cols = 4)
{
    NocConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.design = design;
    return cfg;
}

/** Reduce a finished system + workload into a RunResult. */
inline RunResult
summarize(NocSystem &sys, const PowerModel &pm)
{
    sys.finalizeStats();
    const NetworkStats &st = sys.stats();
    const ActivityCounters t = st.totals();
    const int numLinks =
        2 * (sys.mesh().rows() * (sys.mesh().cols() - 1) +
             sys.mesh().cols() * (sys.mesh().rows() - 1));

    RunResult r;
    r.design = sys.config().design;
    r.cycles = sys.now();
    r.avgLatency = st.avgPacketLatency();
    r.avgHops = st.avgHops();
    r.delivered = st.packetsDelivered();
    r.wakeups = st.totalWakeups();
    r.idleFraction = st.avgIdleFraction();
    const double stateCycles = static_cast<double>(
        t.onCycles + t.offCycles + t.wakingCycles);
    r.offFraction = stateCycles > 0
        ? static_cast<double>(t.offCycles) / stateCycles : 0.0;
    r.energy = pm.compute(st, sys.now(), numLinks, sys.config().design,
                          sys.config().betCycles);
    r.idleLeqBet = st.combinedIdleHistogram().fractionAtOrBelow(
        sys.config().betCycles);
    return r;
}

/**
 * Run one PARSEC benchmark model to completion under @p design.
 */
inline RunResult
runParsec(PgDesign design, const ParsecParams &params,
          const PowerModel &pm, int rows = 4, int cols = 4,
          std::uint64_t seed = 1)
{
    NocConfig cfg = makeConfig(design, rows, cols);
    NocSystem sys(cfg);
    ParsecParams p = params;
    if (quickMode())
        p.transactionsPerCore = std::max(50, p.transactionsPerCore / 8);
    ParsecWorkload wl(p, seed);
    sys.setWorkload(&wl);
    const Cycle limit = 30'000'000;
    if (!sys.runToCompletion(limit)) {
        std::fprintf(stderr,
                     "warning: %s/%s hit the cycle limit (%llu done)\n",
                     pgDesignName(design), p.name.c_str(),
                     static_cast<unsigned long long>(
                         wl.completedTransactions()));
    }
    return summarize(sys, pm);
}

/**
 * Run open-loop synthetic traffic for a fixed number of cycles.
 */
inline RunResult
runSynthetic(PgDesign design, TrafficPattern pattern, double rate,
             const PowerModel &pm, Cycle warmup, Cycle measure,
             int rows = 4, int cols = 4, std::uint64_t seed = 1,
             const NocConfig *baseCfg = nullptr)
{
    NocConfig cfg = baseCfg ? *baseCfg : makeConfig(design, rows, cols);
    cfg.design = design;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.statsWarmup = warmup;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(pattern, rate, seed);
    sys.setWorkload(&traffic);
    sys.run(warmup + measure);
    return summarize(sys, pm);
}

/** One benchmark's results under all four designs. */
struct CampaignRow
{
    std::string benchmark;
    RunResult byDesign[4];
};

/**
 * Run the full PARSEC campaign (10 benchmarks x 4 designs). The heart of
 * Figures 8-12.
 */
inline std::vector<CampaignRow>
runCampaign(const PowerModel &pm)
{
    std::vector<CampaignRow> rows;
    for (const ParsecParams &p : parsecSuite()) {
        CampaignRow row;
        row.benchmark = p.name;
        for (int d = 0; d < 4; ++d) {
            row.byDesign[d] =
                runParsec(static_cast<PgDesign>(d), p, pm);
        }
        rows.push_back(std::move(row));
        std::fprintf(stderr, "  [campaign] %s done\n", p.name.c_str());
    }
    return rows;
}

// --- Resilient campaign running ---------------------------------------------

/**
 * Drive @p sys to absolute cycle @p target, writing a checkpoint to
 * @p path every @p every cycles (0 = never). Resumes transparently: when
 * the system was restored mid-phase, sys.now() already sits past zero and
 * only the remaining cycles run. @p user is campaign metadata stored in
 * the checkpoint header.
 */
inline void
runCheckpointed(NocSystem &sys, Cycle target, Cycle every,
                const std::string &path,
                const std::array<std::uint64_t, 4> &user = {})
{
    while (sys.now() < target) {
        const Cycle remaining = target - sys.now();
        sys.run(every > 0 ? std::min(every, remaining) : remaining);
        if (every > 0 && !path.empty()) {
            std::string err;
            if (!sys.saveCheckpoint(path, user, &err))
                std::fprintf(stderr, "warning: checkpoint write failed: "
                             "%s\n", err.c_str());
        }
    }
}

/** Supervisor policy for runSupervised(). */
struct SupervisorOptions
{
    /**
     * Wall-clock seconds without progress (checkpoint file mtime advance
     * or child exit) before the campaign is declared hung and killed.
     */
    double hangTimeoutSec = 300.0;

    /**
     * CONSECUTIVE failures without sustained progress before giving up.
     * A failure that follows resetAfterProgressSec of heartbeat progress
     * starts a fresh streak: a campaign whose rare crashes are separated
     * by hours of honest work is not punished like one that dies on
     * startup in a loop.
     */
    int maxRetries = 3;

    /** Delay before the first restart of a streak. */
    double backoffSec = 1.0;

    /** Hard cap on the restart delay; doubling stops here. */
    double maxBackoffSec = 60.0;

    /**
     * Restart delay is drawn from [(1-j)*d, d] with a deterministic
     * per-supervisor jitter, so a shared-cause crash (disk full, OOM
     * sweep) does not restart every campaign on the machine in lockstep.
     */
    double jitterFraction = 0.5;

    /** Heartbeat progress this long marks the streak as reset-worthy. */
    double resetAfterProgressSec = 30.0;

    /** Decorrelates the jitter of concurrent supervisors. */
    std::uint64_t backoffNoise = 0;
};

/**
 * Run @p body in a supervised child process (POSIX). The child is
 * expected to checkpoint periodically to @p heartbeatPath; the file's
 * mtime is its heartbeat. The parent SIGKILLs a child that stops making
 * progress for opts.hangTimeoutSec and restarts after a crash or hang,
 * passing resume=true so the body restores from the last checkpoint.
 *
 * Restart policy (the anti-restart-storm rules):
 *  - the delay before restart n of a streak is exponential from
 *    opts.backoffSec, hard-capped at opts.maxBackoffSec, and jittered
 *    by a deterministic multiplier (campaign::backoffDelaySec), so
 *    concurrent supervisors hit by a shared-cause crash desynchronize;
 *  - a failure that followed >= opts.resetAfterProgressSec of heartbeat
 *    progress starts a NEW streak (backoff and retry budget reset);
 *    opts.maxRetries bounds consecutive unproductive failures, not
 *    lifetime restarts;
 *  - a child exiting with a deterministic taxonomy code
 *    (campaign::kExitGateFailure, kExitBadConfig) is NEVER restarted:
 *    retrying reproduces the failure bit-exactly, so the supervisor
 *    returns it immediately.
 *
 * Returns the child's exit code (0 = success), or the last failure's
 * code once the streak budget is exhausted. On platforms without fork()
 * the body runs inline, unsupervised.
 *
 * @param body campaign entry point; receives whether to resume from
 *        heartbeatPath and returns a process exit code
 */
inline int
runSupervised(const std::string &heartbeatPath,
              const SupervisorOptions &opts,
              const std::function<int(bool resume)> &body)
{
#if NORD_BENCH_HAVE_SUPERVISOR
    // Nanosecond mtimes: second-granular heartbeats would spuriously
    // declare a hang whenever hangTimeoutSec < 1 (as the tests use).
    auto mtimeNs = [](const std::string &p, std::uint64_t *out) {
        struct stat st;
        if (stat(p.c_str(), &st) != 0)
            return false;
#if defined(__APPLE__)
        *out = static_cast<std::uint64_t>(st.st_mtimespec.tv_sec) *
                   1000000000ull +
               static_cast<std::uint64_t>(st.st_mtimespec.tv_nsec);
#else
        *out = static_cast<std::uint64_t>(st.st_mtim.tv_sec) *
                   1000000000ull +
               static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
#endif
        return true;
    };
    auto wallClock = [] {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    };
    const campaign::BackoffPolicy policy{
        opts.backoffSec, opts.maxBackoffSec, opts.jitterFraction};

    int lastStatus = 1;
    int streak = 0;  // consecutive failures without sustained progress
    for (int attempt = 0;; ++attempt) {
        std::uint64_t heartbeat0 = 0;
        const bool haveCkpt = mtimeNs(heartbeatPath, &heartbeat0);
        const bool resume = attempt > 0 && haveCkpt;
        if (attempt > 0) {
            const double delay =
                campaign::backoffDelaySec(policy, streak,
                                          opts.backoffNoise);
            std::fprintf(stderr,
                         "[supervisor] restart (streak %d/%d, %s) in "
                         "%.2fs\n",
                         streak, opts.maxRetries,
                         resume ? "resuming from checkpoint"
                                : "no checkpoint yet, from scratch",
                         delay);
            struct timespec d;
            d.tv_sec = static_cast<time_t>(delay);
            d.tv_nsec = static_cast<long>(
                (delay - static_cast<double>(d.tv_sec)) * 1e9);
            nanosleep(&d, nullptr);
        }

        const pid_t pid = fork();
        if (pid < 0) {
            std::fprintf(stderr, "[supervisor] fork failed; running "
                         "inline\n");
            return body(resume);
        }
        if (pid == 0)
            _exit(body(resume));

        const double spawned = wallClock();
        double lastProgress = spawned;
        std::uint64_t lastMtime = heartbeat0;
        bool progressed = false;
        bool killedForHang = false;
        int status = 0;
        for (;;) {
            const pid_t done = waitpid(pid, &status, WNOHANG);
            if (done == pid)
                break;
            std::uint64_t m = 0;
            if (mtimeNs(heartbeatPath, &m) && m != lastMtime) {
                lastMtime = m;
                lastProgress = wallClock();
                progressed = true;
            }
            if (wallClock() - lastProgress > opts.hangTimeoutSec) {
                std::fprintf(stderr, "[supervisor] no progress for "
                             "%.2fs: killing hung campaign\n",
                             opts.hangTimeoutSec);
                kill(pid, SIGKILL);
                waitpid(pid, &status, 0);
                killedForHang = true;
                break;
            }
            struct timespec poll = {0, 20 * 1000 * 1000};
            nanosleep(&poll, nullptr);
        }
        if (!killedForHang && WIFEXITED(status)) {
            lastStatus = WEXITSTATUS(status);
            if (lastStatus == 0)
                return 0;
            std::fprintf(stderr, "[supervisor] campaign exited with "
                         "code %d\n", lastStatus);
            if (lastStatus == campaign::kExitGateFailure ||
                lastStatus == campaign::kExitBadConfig) {
                std::fprintf(stderr,
                             "[supervisor] deterministic failure: a "
                             "retry would reproduce it bit-exactly, "
                             "not retrying\n");
                return lastStatus;
            }
        } else {
            lastStatus = 1;
            if (!killedForHang)
                std::fprintf(stderr, "[supervisor] campaign crashed "
                             "(signal %d)\n",
                             WIFSIGNALED(status) ? WTERMSIG(status) : 0);
        }

        const bool sustained =
            progressed &&
            wallClock() - spawned >= opts.resetAfterProgressSec;
        streak = sustained ? 1 : streak + 1;
        if (streak > opts.maxRetries)
            break;
    }
    std::fprintf(stderr,
                 "[supervisor] giving up after %d consecutive "
                 "unproductive failures\n",
                 opts.maxRetries);
    return lastStatus;
#else
    (void)heartbeatPath;
    (void)opts;
    return body(false);
#endif
}

/** Print one labeled row of "value (paper: x)" style output. */
inline void
printRow(const std::string &label, double value, const char *unit,
         const char *note = nullptr)
{
    std::printf("%-16s %10.3f %s", label.c_str(), value, unit);
    if (note)
        std::printf("   %s", note);
    std::printf("\n");
}

}  // namespace bench
}  // namespace nord

#endif  // NORD_BENCH_BENCH_UTIL_HH

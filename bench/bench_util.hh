/**
 * @file
 * Shared experiment harness for the figure-reproduction benches.
 *
 * Each bench binary regenerates one table/figure of the paper. They all
 * run complete NocSystem simulations and reduce them to the paper's
 * metrics through the helpers here.
 *
 * Environment: set NORD_QUICK=1 to shrink the PARSEC scripts (faster,
 * noisier); figures keep their shape.
 */

#ifndef NORD_BENCH_BENCH_UTIL_HH
#define NORD_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define NORD_BENCH_HAVE_SUPERVISOR 1
#include <csignal>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif

#include "ckpt/checkpoint.hh"
#include "ckpt/state_serializer.hh"
#include "network/noc_system.hh"
#include "power/area_model.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace bench {

/** Metrics extracted from one finished simulation. */
struct RunResult
{
    PgDesign design = PgDesign::kNoPg;
    Cycle cycles = 0;             ///< simulated cycles (= execution time
                                  ///< for closed-loop runs)
    double avgLatency = 0.0;      ///< average packet latency (cycles)
    double avgHops = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t wakeups = 0;
    double idleFraction = 0.0;    ///< router datapath idleness
    double offFraction = 0.0;     ///< cycles spent gated off
    EnergyBreakdown energy;       ///< Joules over the whole run
    double idleLeqBet = 0.0;      ///< idle periods <= BET (fraction)

    /** Average NoC power in watts. */
    double powerW(const PowerModel &pm) const
    {
        return energy.averagePowerW(cycles, pm.tech().cycleTime());
    }

    /** Static + PG-overhead energy (the paper's "static energy"). */
    double staticEnergy() const
    {
        return energy.routerStatic + energy.pgOverhead;
    }
};

/** True when NORD_QUICK=1 (shorter PARSEC scripts). */
inline bool
quickMode()
{
    const char *env = std::getenv("NORD_QUICK");
    return env && env[0] == '1';
}

/** Table 1 configuration for one design. */
inline NocConfig
makeConfig(PgDesign design, int rows = 4, int cols = 4)
{
    NocConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.design = design;
    return cfg;
}

/** Reduce a finished system + workload into a RunResult. */
inline RunResult
summarize(NocSystem &sys, const PowerModel &pm)
{
    sys.finalizeStats();
    const NetworkStats &st = sys.stats();
    const ActivityCounters t = st.totals();
    const int numLinks =
        2 * (sys.mesh().rows() * (sys.mesh().cols() - 1) +
             sys.mesh().cols() * (sys.mesh().rows() - 1));

    RunResult r;
    r.design = sys.config().design;
    r.cycles = sys.now();
    r.avgLatency = st.avgPacketLatency();
    r.avgHops = st.avgHops();
    r.delivered = st.packetsDelivered();
    r.wakeups = st.totalWakeups();
    r.idleFraction = st.avgIdleFraction();
    const double stateCycles = static_cast<double>(
        t.onCycles + t.offCycles + t.wakingCycles);
    r.offFraction = stateCycles > 0
        ? static_cast<double>(t.offCycles) / stateCycles : 0.0;
    r.energy = pm.compute(st, sys.now(), numLinks, sys.config().design,
                          sys.config().betCycles);
    r.idleLeqBet = st.combinedIdleHistogram().fractionAtOrBelow(
        sys.config().betCycles);
    return r;
}

/**
 * Run one PARSEC benchmark model to completion under @p design.
 */
inline RunResult
runParsec(PgDesign design, const ParsecParams &params,
          const PowerModel &pm, int rows = 4, int cols = 4,
          std::uint64_t seed = 1)
{
    NocConfig cfg = makeConfig(design, rows, cols);
    NocSystem sys(cfg);
    ParsecParams p = params;
    if (quickMode())
        p.transactionsPerCore = std::max(50, p.transactionsPerCore / 8);
    ParsecWorkload wl(p, seed);
    sys.setWorkload(&wl);
    const Cycle limit = 30'000'000;
    if (!sys.runToCompletion(limit)) {
        std::fprintf(stderr,
                     "warning: %s/%s hit the cycle limit (%llu done)\n",
                     pgDesignName(design), p.name.c_str(),
                     static_cast<unsigned long long>(
                         wl.completedTransactions()));
    }
    return summarize(sys, pm);
}

/**
 * Run open-loop synthetic traffic for a fixed number of cycles.
 */
inline RunResult
runSynthetic(PgDesign design, TrafficPattern pattern, double rate,
             const PowerModel &pm, Cycle warmup, Cycle measure,
             int rows = 4, int cols = 4, std::uint64_t seed = 1,
             const NocConfig *baseCfg = nullptr)
{
    NocConfig cfg = baseCfg ? *baseCfg : makeConfig(design, rows, cols);
    cfg.design = design;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.statsWarmup = warmup;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(pattern, rate, seed);
    sys.setWorkload(&traffic);
    sys.run(warmup + measure);
    return summarize(sys, pm);
}

/** One benchmark's results under all four designs. */
struct CampaignRow
{
    std::string benchmark;
    RunResult byDesign[4];
};

/**
 * Run the full PARSEC campaign (10 benchmarks x 4 designs). The heart of
 * Figures 8-12.
 */
inline std::vector<CampaignRow>
runCampaign(const PowerModel &pm)
{
    std::vector<CampaignRow> rows;
    for (const ParsecParams &p : parsecSuite()) {
        CampaignRow row;
        row.benchmark = p.name;
        for (int d = 0; d < 4; ++d) {
            row.byDesign[d] =
                runParsec(static_cast<PgDesign>(d), p, pm);
        }
        rows.push_back(std::move(row));
        std::fprintf(stderr, "  [campaign] %s done\n", p.name.c_str());
    }
    return rows;
}

// --- Resilient campaign running ---------------------------------------------

/**
 * Drive @p sys to absolute cycle @p target, writing a checkpoint to
 * @p path every @p every cycles (0 = never). Resumes transparently: when
 * the system was restored mid-phase, sys.now() already sits past zero and
 * only the remaining cycles run. @p user is campaign metadata stored in
 * the checkpoint header.
 */
inline void
runCheckpointed(NocSystem &sys, Cycle target, Cycle every,
                const std::string &path,
                const std::array<std::uint64_t, 4> &user = {})
{
    while (sys.now() < target) {
        const Cycle remaining = target - sys.now();
        sys.run(every > 0 ? std::min(every, remaining) : remaining);
        if (every > 0 && !path.empty()) {
            std::string err;
            if (!sys.saveCheckpoint(path, user, &err))
                std::fprintf(stderr, "warning: checkpoint write failed: "
                             "%s\n", err.c_str());
        }
    }
}

/** Supervisor policy for runSupervised(). */
struct SupervisorOptions
{
    /**
     * Wall-clock seconds without progress (checkpoint file mtime advance
     * or child exit) before the campaign is declared hung and killed.
     */
    double hangTimeoutSec = 300.0;

    /** Restarts after a crash or hang before giving up. */
    int maxRetries = 3;

    /** Delay before the first restart; doubles per retry. */
    double backoffSec = 1.0;
};

/**
 * Run @p body in a supervised child process (POSIX). The child is
 * expected to checkpoint periodically to @p heartbeatPath; the file's
 * mtime is its heartbeat. The parent SIGKILLs a child that stops making
 * progress for opts.hangTimeoutSec and restarts after a crash or hang --
 * with exponential backoff, at most opts.maxRetries times -- passing
 * resume=true so the body restores from the last checkpoint. Returns the
 * child's exit code (0 = success), or the last failure's code once
 * retries are exhausted. On platforms without fork() the body runs
 * inline, unsupervised.
 *
 * @param body campaign entry point; receives whether to resume from
 *        heartbeatPath and returns a process exit code
 */
inline int
runSupervised(const std::string &heartbeatPath,
              const SupervisorOptions &opts,
              const std::function<int(bool resume)> &body)
{
#if NORD_BENCH_HAVE_SUPERVISOR
    auto mtime = [](const std::string &p, double *out) {
        struct stat st;
        if (stat(p.c_str(), &st) != 0)
            return false;
        *out = static_cast<double>(st.st_mtime);
        return true;
    };
    auto wallClock = [] {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    };

    int lastStatus = 1;
    double backoff = opts.backoffSec;
    for (int attempt = 0; attempt <= opts.maxRetries; ++attempt) {
        double heartbeat0 = 0.0;
        const bool haveCkpt = mtime(heartbeatPath, &heartbeat0);
        const bool resume = attempt > 0 && haveCkpt;
        if (attempt > 0) {
            std::fprintf(stderr,
                         "[supervisor] restart %d/%d (%s) in %.1fs\n",
                         attempt, opts.maxRetries,
                         resume ? "resuming from checkpoint"
                                : "no checkpoint yet, from scratch",
                         backoff);
            struct timespec delay;
            delay.tv_sec = static_cast<time_t>(backoff);
            delay.tv_nsec = static_cast<long>(
                (backoff - static_cast<double>(delay.tv_sec)) * 1e9);
            nanosleep(&delay, nullptr);
            backoff *= 2.0;
        }

        const pid_t pid = fork();
        if (pid < 0) {
            std::fprintf(stderr, "[supervisor] fork failed; running "
                         "inline\n");
            return body(resume);
        }
        if (pid == 0)
            _exit(body(resume));

        double lastProgress = wallClock();
        double lastMtime = heartbeat0;
        bool killedForHang = false;
        int status = 0;
        for (;;) {
            const pid_t done = waitpid(pid, &status, WNOHANG);
            if (done == pid)
                break;
            double m = 0.0;
            if (mtime(heartbeatPath, &m) && m != lastMtime) {
                lastMtime = m;
                lastProgress = wallClock();
            }
            if (wallClock() - lastProgress > opts.hangTimeoutSec) {
                std::fprintf(stderr, "[supervisor] no progress for "
                             "%.0fs: killing hung campaign\n",
                             opts.hangTimeoutSec);
                kill(pid, SIGKILL);
                waitpid(pid, &status, 0);
                killedForHang = true;
                break;
            }
            struct timespec poll = {0, 200 * 1000 * 1000};
            nanosleep(&poll, nullptr);
        }
        if (!killedForHang && WIFEXITED(status)) {
            lastStatus = WEXITSTATUS(status);
            if (lastStatus == 0)
                return 0;
            std::fprintf(stderr, "[supervisor] campaign exited with "
                         "code %d\n", lastStatus);
        } else {
            lastStatus = 1;
            if (!killedForHang)
                std::fprintf(stderr, "[supervisor] campaign crashed "
                             "(signal %d)\n",
                             WIFSIGNALED(status) ? WTERMSIG(status) : 0);
        }
    }
    std::fprintf(stderr, "[supervisor] giving up after %d retries\n",
                 opts.maxRetries);
    return lastStatus;
#else
    (void)heartbeatPath;
    (void)opts;
    return body(false);
#endif
}

/** Print one labeled row of "value (paper: x)" style output. */
inline void
printRow(const std::string &label, double value, const char *unit,
         const char *note = nullptr)
{
    std::printf("%-16s %10.3f %s", label.c_str(), value, unit);
    if (note)
        std::printf("   %s", note);
    std::printf("\n");
}

}  // namespace bench
}  // namespace nord

#endif  // NORD_BENCH_BENCH_UTIL_HH

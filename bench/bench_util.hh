/**
 * @file
 * Shared experiment harness for the figure-reproduction benches.
 *
 * Each bench binary regenerates one table/figure of the paper. They all
 * run complete NocSystem simulations and reduce them to the paper's
 * metrics through the helpers here.
 *
 * Environment: set NORD_QUICK=1 to shrink the PARSEC scripts (faster,
 * noisier); figures keep their shape.
 */

#ifndef NORD_BENCH_BENCH_UTIL_HH
#define NORD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "network/noc_system.hh"
#include "power/area_model.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace bench {

/** Metrics extracted from one finished simulation. */
struct RunResult
{
    PgDesign design = PgDesign::kNoPg;
    Cycle cycles = 0;             ///< simulated cycles (= execution time
                                  ///< for closed-loop runs)
    double avgLatency = 0.0;      ///< average packet latency (cycles)
    double avgHops = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t wakeups = 0;
    double idleFraction = 0.0;    ///< router datapath idleness
    double offFraction = 0.0;     ///< cycles spent gated off
    EnergyBreakdown energy;       ///< Joules over the whole run
    double idleLeqBet = 0.0;      ///< idle periods <= BET (fraction)

    /** Average NoC power in watts. */
    double powerW(const PowerModel &pm) const
    {
        return energy.averagePowerW(cycles, pm.tech().cycleTime());
    }

    /** Static + PG-overhead energy (the paper's "static energy"). */
    double staticEnergy() const
    {
        return energy.routerStatic + energy.pgOverhead;
    }
};

/** True when NORD_QUICK=1 (shorter PARSEC scripts). */
inline bool
quickMode()
{
    const char *env = std::getenv("NORD_QUICK");
    return env && env[0] == '1';
}

/** Table 1 configuration for one design. */
inline NocConfig
makeConfig(PgDesign design, int rows = 4, int cols = 4)
{
    NocConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.design = design;
    return cfg;
}

/** Reduce a finished system + workload into a RunResult. */
inline RunResult
summarize(NocSystem &sys, const PowerModel &pm)
{
    sys.finalizeStats();
    const NetworkStats &st = sys.stats();
    const ActivityCounters t = st.totals();
    const int numLinks =
        2 * (sys.mesh().rows() * (sys.mesh().cols() - 1) +
             sys.mesh().cols() * (sys.mesh().rows() - 1));

    RunResult r;
    r.design = sys.config().design;
    r.cycles = sys.now();
    r.avgLatency = st.avgPacketLatency();
    r.avgHops = st.avgHops();
    r.delivered = st.packetsDelivered();
    r.wakeups = st.totalWakeups();
    r.idleFraction = st.avgIdleFraction();
    const double stateCycles = static_cast<double>(
        t.onCycles + t.offCycles + t.wakingCycles);
    r.offFraction = stateCycles > 0
        ? static_cast<double>(t.offCycles) / stateCycles : 0.0;
    r.energy = pm.compute(st, sys.now(), numLinks, sys.config().design,
                          sys.config().betCycles);
    r.idleLeqBet = st.combinedIdleHistogram().fractionAtOrBelow(
        sys.config().betCycles);
    return r;
}

/**
 * Run one PARSEC benchmark model to completion under @p design.
 */
inline RunResult
runParsec(PgDesign design, const ParsecParams &params,
          const PowerModel &pm, int rows = 4, int cols = 4,
          std::uint64_t seed = 1)
{
    NocConfig cfg = makeConfig(design, rows, cols);
    NocSystem sys(cfg);
    ParsecParams p = params;
    if (quickMode())
        p.transactionsPerCore = std::max(50, p.transactionsPerCore / 8);
    ParsecWorkload wl(p, seed);
    sys.setWorkload(&wl);
    const Cycle limit = 30'000'000;
    if (!sys.runToCompletion(limit)) {
        std::fprintf(stderr,
                     "warning: %s/%s hit the cycle limit (%llu done)\n",
                     pgDesignName(design), p.name.c_str(),
                     static_cast<unsigned long long>(
                         wl.completedTransactions()));
    }
    return summarize(sys, pm);
}

/**
 * Run open-loop synthetic traffic for a fixed number of cycles.
 */
inline RunResult
runSynthetic(PgDesign design, TrafficPattern pattern, double rate,
             const PowerModel &pm, Cycle warmup, Cycle measure,
             int rows = 4, int cols = 4, std::uint64_t seed = 1,
             const NocConfig *baseCfg = nullptr)
{
    NocConfig cfg = baseCfg ? *baseCfg : makeConfig(design, rows, cols);
    cfg.design = design;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.statsWarmup = warmup;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(pattern, rate, seed);
    sys.setWorkload(&traffic);
    sys.run(warmup + measure);
    return summarize(sys, pm);
}

/** One benchmark's results under all four designs. */
struct CampaignRow
{
    std::string benchmark;
    RunResult byDesign[4];
};

/**
 * Run the full PARSEC campaign (10 benchmarks x 4 designs). The heart of
 * Figures 8-12.
 */
inline std::vector<CampaignRow>
runCampaign(const PowerModel &pm)
{
    std::vector<CampaignRow> rows;
    for (const ParsecParams &p : parsecSuite()) {
        CampaignRow row;
        row.benchmark = p.name;
        for (int d = 0; d < 4; ++d) {
            row.byDesign[d] =
                runParsec(static_cast<PgDesign>(d), p, pm);
        }
        rows.push_back(std::move(row));
        std::fprintf(stderr, "  [campaign] %s done\n", p.name.c_str());
    }
    return rows;
}

/** Print one labeled row of "value (paper: x)" style output. */
inline void
printRow(const std::string &label, double value, const char *unit,
         const char *note = nullptr)
{
    std::printf("%-16s %10.3f %s", label.c_str(), value, unit);
    if (note)
        std::printf("   %s", note);
    std::printf("\n");
}

}  // namespace bench
}  // namespace nord

#endif  // NORD_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Figure 12 reproduction: execution time normalized to No_PG.
 *
 * Execution time is the cycle at which every core in the closed-loop
 * workload model finishes its transaction script, so network latency
 * degradation lengthens it exactly as in the paper's full-system runs.
 *
 * Paper anchors: Conv_PG +11.7%, Conv_PG_OPT +8.1%, NoRD +3.9%.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    auto campaign = runCampaign(pm);

    std::printf("=== Figure 12: execution time (norm. to No_PG) ===\n");
    std::printf("%-14s %9s %12s %9s\n", "benchmark", "Conv_PG",
                "Conv_PG_OPT", "NoRD");
    double sums[4] = {0, 0, 0, 0};
    for (const CampaignRow &row : campaign) {
        const double base = static_cast<double>(row.byDesign[0].cycles);
        std::printf("%-14s", row.benchmark.c_str());
        for (int d = 1; d < 4; ++d) {
            const double frac =
                static_cast<double>(row.byDesign[d].cycles) / base;
            sums[d] += frac;
            std::printf(" %8.1f%%%s", 100.0 * frac, d == 2 ? "   " : "");
        }
        std::printf("\n");
    }
    const double n = static_cast<double>(campaign.size());
    std::printf("\nAVG: Conv_PG +%.1f%% (paper: +11.7%%), "
                "Conv_PG_OPT +%.1f%% (paper: +8.1%%), "
                "NoRD +%.1f%% (paper: +3.9%%)\n",
                100.0 * (sums[1] / n - 1.0), 100.0 * (sums[2] / n - 1.0),
                100.0 * (sums[3] / n - 1.0));
    return 0;
}

/**
 * @file
 * Figure 9 reproduction: (a) power-gating wakeup-overhead energy and
 * (b) router wakeup counts, normalized to Conv_PG.
 *
 * Paper anchors: NoRD cuts overhead energy by 80.7% vs Conv_PG and 74.0%
 * vs Conv_PG_OPT; wakeup counts drop by 81.0% and 73.3%.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    auto campaign = runCampaign(pm);

    std::printf("=== Figure 9(a): PG overhead energy (norm. to Conv_PG) "
                "===\n");
    std::printf("%-14s %10s %12s %10s\n", "benchmark", "Conv_PG",
                "Conv_PG_OPT", "NoRD");
    double eSum[4] = {0, 0, 0, 0};
    double wSum[4] = {0, 0, 0, 0};
    for (const CampaignRow &row : campaign) {
        const double base = row.byDesign[1].energy.pgOverhead;
        std::printf("%-14s", row.benchmark.c_str());
        for (int d = 1; d < 4; ++d) {
            const double frac = row.byDesign[d].energy.pgOverhead / base;
            eSum[d] += frac;
            wSum[d] += static_cast<double>(row.byDesign[d].wakeups) /
                       static_cast<double>(row.byDesign[1].wakeups);
            std::printf(" %9.1f%%%s", 100.0 * frac, d == 2 ? "  " : "");
        }
        std::printf("\n");
    }
    const double n = static_cast<double>(campaign.size());
    std::printf("%-14s %9.1f%% %11.1f%% %9.1f%%\n\n", "AVG",
                100.0 * eSum[1] / n, 100.0 * eSum[2] / n,
                100.0 * eSum[3] / n);

    std::printf("=== Figure 9(b): router wakeups (norm. to Conv_PG) ===\n");
    std::printf("%-14s %10s %12s %10s\n", "AVG", "Conv_PG",
                "Conv_PG_OPT", "NoRD");
    std::printf("%-14s %9.1f%% %11.1f%% %9.1f%%\n", "",
                100.0 * wSum[1] / n, 100.0 * wSum[2] / n,
                100.0 * wSum[3] / n);

    std::printf("\nNoRD overhead reduction: %.1f%% vs Conv_PG "
                "(paper: 80.7%%), %.1f%% vs Conv_PG_OPT (paper: 74.0%%)\n",
                100.0 * (1.0 - eSum[3] / eSum[1]),
                100.0 * (1.0 - eSum[3] / eSum[2]));
    std::printf("NoRD wakeup reduction:   %.1f%% vs Conv_PG "
                "(paper: 81.0%%), %.1f%% vs Conv_PG_OPT (paper: 73.3%%)\n",
                100.0 * (1.0 - wSum[3] / wSum[1]),
                100.0 * (1.0 - wSum[3] / wSum[2]));
    return 0;
}

/**
 * @file
 * Figure 6 reproduction: impact of the number of powered-on routers on
 * average node-to-node distance and per-hop latency, via the off-line
 * Floyd-Warshall program of Section 4.4.
 *
 * Paper anchors: distance falls from ~8 hops (ring only) towards the
 * all-on mesh average (2.67 for 4x4) while per-hop latency rises from the
 * 3-cycle bypass towards the 5-cycle full pipeline; six routers form the
 * knee and become the performance-centric class.
 */

#include <cstdio>

#include "topology/criticality.hh"

int
main()
{
    using namespace nord;

    MeshTopology mesh(4, 4);
    BypassRing ring(mesh);
    CriticalityAnalyzer analyzer(mesh, ring);

    std::printf("=== Figure 6: greedy powered-on sweep (4x4) ===\n");
    std::printf("%-4s %-10s %-12s %s\n", "k", "distance", "per-hop",
                "powered-on set");
    auto sweep = analyzer.greedySweep();
    for (const CriticalityPoint &pt : sweep) {
        std::printf("%-4d %-10.3f %-12.3f", pt.numPoweredOn,
                    pt.avgDistanceHops, pt.avgPerHopLatency);
        for (NodeId r : pt.poweredOn)
            std::printf(" %d", r);
        std::printf("\n");
    }

    const int knee = CriticalityAnalyzer::kneePoint(sweep);
    std::printf("\nknee: %d routers (paper: 6)\n", knee);
    std::printf("performance-centric set:");
    for (NodeId r : analyzer.performanceCentricSet(knee))
        std::printf(" %d", r);
    std::printf("\n(paper's set {4,5,6,7,13,14} assumes the paper's ring "
                "construction;\n ours differs but the knee and curve "
                "shapes are the reproduction targets)\n");
    return 0;
}

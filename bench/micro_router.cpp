/**
 * @file
 * Simulator microbenchmarks (google-benchmark): cycles/second of the
 * network model itself under each design, plus the off-line criticality
 * analysis. Useful for tracking simulator performance regressions; not a
 * paper figure.
 */

#include <benchmark/benchmark.h>

#include "network/noc_system.hh"
#include "topology/criticality.hh"
#include "traffic/synthetic_traffic.hh"

namespace {

void
BM_SimulateDesign(benchmark::State &state)
{
    using namespace nord;
    NocConfig cfg;
    cfg.design = static_cast<PgDesign>(state.range(0));
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 9);
    sys.setWorkload(&traffic);
    for (auto _ : state)
        sys.run(1000);
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
BM_FloydWarshallAnalyze(benchmark::State &state)
{
    using namespace nord;
    MeshTopology mesh(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(0)));
    BypassRing ring(mesh);
    CriticalityAnalyzer analyzer(mesh, ring);
    std::vector<bool> on(static_cast<size_t>(mesh.numNodes()), false);
    for (int i = 0; i < mesh.numNodes(); i += 2)
        on[i] = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzer.analyze(on));
}

}  // namespace

BENCHMARK(BM_SimulateDesign)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FloydWarshallAnalyze)->Arg(4)->Arg(8);

BENCHMARK_MAIN();

/**
 * @file
 * Figure 7 reproduction: determining the wakeup threshold.
 *
 * All routers are forced into sleep mode (wakeup thresholds set beyond
 * reach for the "ring only" row, or uniformly to Req = 1..5), traffic is
 * concentrated on the Bypass Ring, and the average latency is recorded
 * while the load rate varies.
 *
 * Paper anchors: the Bypass Ring alone saturates at ~14% of the all-on
 * throughput; a threshold of 4+ VC requests costs ~60% extra latency, so
 * power-centric routers use 3 and performance-centric routers use 1.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    const double rates[] = {0.01, 0.02, 0.03, 0.04, 0.05,
                            0.06, 0.08, 0.10};
    const Cycle warmup = 10000;
    const Cycle measure = 100000;

    std::printf("=== Figure 7: latency vs injection rate per wakeup "
                "threshold (4x4, uniform random) ===\n");
    std::printf("%-8s", "rate");
    for (int req = 1; req <= 5; ++req)
        std::printf("  Req=%d   ", req);
    std::printf("%-10s %-10s\n", "ring-only", "all-on");

    for (double rate : rates) {
        std::printf("%-8.3f", rate);
        for (int req = 1; req <= 5; ++req) {
            NocConfig cfg = makeConfig(PgDesign::kNord);
            cfg.nordPerfThreshold = req;
            cfg.nordPowerThreshold = req;
            cfg.nordPerfCentricCount = 0;
            RunResult r = runSynthetic(PgDesign::kNord,
                                       TrafficPattern::kUniformRandom,
                                       rate, pm, warmup, measure, 4, 4, 11,
                                       &cfg);
            std::printf(" %8.2f", r.avgLatency);
        }
        // Ring only: thresholds unreachably high, routers never wake.
        NocConfig ringCfg = makeConfig(PgDesign::kNord);
        ringCfg.nordPerfThreshold = 1 << 20;
        ringCfg.nordPowerThreshold = 1 << 20;
        ringCfg.nordPerfCentricCount = 0;
        RunResult ringOnly = runSynthetic(PgDesign::kNord,
                                          TrafficPattern::kUniformRandom,
                                          rate, pm, warmup, measure, 4, 4,
                                          11, &ringCfg);
        RunResult allOn = runSynthetic(PgDesign::kNoPg,
                                       TrafficPattern::kUniformRandom,
                                       rate, pm, warmup, measure, 4, 4, 11);
        std::printf(" %9.2f %9.2f\n", ringOnly.avgLatency,
                    allOn.avgLatency);
    }
    std::printf("\nA latency blow-up in the ring-only column marks the "
                "Bypass Ring saturation point\n(paper: ~14%% of the all-on "
                "throughput).\n");
    return 0;
}

/**
 * @file
 * Ablation study of NoRD's design choices (beyond the paper's figures):
 * what do the performance-centric class, the steering table, and the
 * asymmetric thresholds each contribute?
 *
 * Variants:
 *   full        - the complete NoRD design (defaults)
 *   no-perf     - no performance-centric class (uniform high threshold)
 *   all-perf    - every router performance-centric (threshold 1)
 *   uniform-thr - asymmetry off: one mid threshold and guard everywhere
 *   perf-10     - a larger performance-centric class (10 routers)
 *
 * Printed per variant: packet latency, wakeups, gated-off fraction and
 * static energy (normalized to No_PG) on a mid-load PARSEC mix.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    const char *benchmarks[] = {"canneal", "fluidanimate", "x264"};

    struct Variant
    {
        const char *name;
        void (*apply)(NocConfig &);
    };
    const Variant variants[] = {
        {"full", [](NocConfig &) {}},
        {"no-perf", [](NocConfig &c) { c.nordPerfCentricCount = 0; }},
        {"all-perf", [](NocConfig &c) {
             c.nordPerfCentricCount = c.numNodes();
         }},
        {"uniform-thr", [](NocConfig &c) {
             c.nordPerfThreshold = 2;
             c.nordPowerThreshold = 2;
             c.nordPerfSleepGuard = 6;
             c.nordPowerSleepGuard = 6;
         }},
        {"perf-10", [](NocConfig &c) { c.nordPerfCentricCount = 10; }},
    };

    std::printf("=== NoRD ablation (PARSEC mix: canneal, fluidanimate, "
                "x264) ===\n");
    std::printf("%-12s %9s %9s %8s %9s\n", "variant", "latency",
                "wakeups", "off%", "staticE%");
    for (const Variant &v : variants) {
        double lat = 0.0;
        double off = 0.0;
        double staticFrac = 0.0;
        std::uint64_t wakeups = 0;
        for (const char *name : benchmarks) {
            const ParsecParams &p = parsecByName(name);
            NocConfig cfg = makeConfig(PgDesign::kNord);
            v.apply(cfg);
            NocSystem sys(cfg);
            ParsecWorkload wl(p, 1);
            sys.setWorkload(&wl);
            sys.runToCompletion(30'000'000);
            RunResult r = summarize(sys, pm);
            RunResult base = runParsec(PgDesign::kNoPg, p, pm);
            lat += r.avgLatency;
            off += r.offFraction;
            wakeups += r.wakeups;
            staticFrac += r.staticEnergy() / base.staticEnergy();
        }
        const double n = 3.0;
        std::printf("%-12s %9.2f %9llu %7.1f%% %8.1f%%\n", v.name,
                    lat / n, static_cast<unsigned long long>(wakeups),
                    100.0 * off / n, 100.0 * staticFrac / n);
    }
    std::printf("\nExpected: 'no-perf' trades latency for off-time; "
                "'all-perf' the reverse;\n'full' sits at the paper's "
                "balance point (Section 4.4).\n");
    return 0;
}

/**
 * @file
 * Shared harness for the perf_* microbenchmarks (as opposed to the
 * figure-reproduction macrobenches driven by bench_util.hh).
 *
 * Each perf binary measures simulator throughput -- cycles/sec,
 * flits/sec, ns/flit, allocs/cycle -- and emits a flat, schema-versioned
 * BENCH_<name>.json with ONE metric per line, so scripts/perf_gate.sh
 * can diff a fresh run against the committed baseline with nothing but
 * awk.
 *
 * Measurement discipline:
 *  - every sample first runs a warmup slice that is thrown away;
 *  - a sample is repeated until the recent repetitions are steady
 *    (relative spread below a threshold) or a repetition cap is hit;
 *  - the reported value is the BEST repetition (minimum wall time):
 *    for a deterministic single-threaded simulator the minimum is the
 *    least-noise estimate -- everything above it is scheduler/cache
 *    interference;
 *  - heap churn is observed by replacing global operator new/delete in
 *    the benchmark binary (allocation COUNTS are deterministic even
 *    though wall time is not);
 *  - peak RSS comes from getrusage(), reported in MiB.
 *
 * JSON schema ("nord-perf-v1"): a flat object. Keys are metric names,
 * values are numbers; the only non-numeric keys are "schema" and
 * "bench". Lower-is-better metrics end in "_ns_per_flit" or
 * "_allocs_per_cycle"; everything else numeric is higher-is-better.
 * perf_gate.sh relies on exactly this naming rule.
 */

#ifndef NORD_BENCH_PERF_UTIL_HH
#define NORD_BENCH_PERF_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define NORD_PERF_HAVE_RUSAGE 1
#include <sys/resource.h>
#endif

namespace nord {
namespace perf {

// --- Global allocation counting ---------------------------------------------
//
// Defined here and ODR-owned by the single TU of each perf binary.
// Counts every operator new/delete in the process; the benchmark loops
// difference the counter around the measured region, so harness-side
// allocations outside the region do not pollute allocs/cycle.

inline std::uint64_t g_allocs = 0;      // NOLINT: per-binary counter
inline std::uint64_t g_allocBytes = 0;  // NOLINT

inline std::uint64_t
allocCount()
{
    return g_allocs;
}

}  // namespace perf
}  // namespace nord

void *
operator new(std::size_t size)
{
    ++nord::perf::g_allocs;
    nord::perf::g_allocBytes += size;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete[](void *p) noexcept
{
    operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    operator delete(p);
}

namespace nord {
namespace perf {

/** Wall-clock seconds (monotonic). */
inline double
wallSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Peak resident set size in MiB (0 when unavailable). */
inline double
peakRssMiB()
{
#if NORD_PERF_HAVE_RUSAGE
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
#else
    return 0.0;
#endif
}

/** One measured region: wall time plus the allocation delta inside it. */
struct Sample
{
    double seconds = 0.0;
    std::uint64_t allocs = 0;
};

/** Repetition policy. NORD_QUICK=1 halves the budget (noisier). */
struct RepeatOptions
{
    int minReps = 3;
    int maxReps = 12;
    /** Steady when (max-min)/min over the last `window` reps is below. */
    double steadySpread = 0.05;
    int window = 3;
};

inline bool
quickMode()
{
    const char *env = std::getenv("NORD_QUICK");
    return env && env[0] == '1';
}

/**
 * Measure @p body repeatedly until steady (or capped) and return the
 * best repetition. @p body must perform the same deterministic work
 * every call (build a fresh system inside it).
 */
inline Sample
measureSteady(const std::function<void()> &body,
              RepeatOptions opts = {})
{
    if (quickMode()) {
        opts.minReps = std::max(1, opts.minReps / 2);
        opts.maxReps = std::max(2, opts.maxReps / 2);
    }
    body();  // warmup: touch code + data, throw away

    std::vector<Sample> reps;
    for (int i = 0; i < opts.maxReps; ++i) {
        const std::uint64_t a0 = allocCount();
        const double t0 = wallSec();
        body();
        const double t1 = wallSec();
        reps.push_back({t1 - t0, allocCount() - a0});
        if (static_cast<int>(reps.size()) >= opts.minReps &&
            static_cast<int>(reps.size()) >= opts.window) {
            double lo = 1e300, hi = 0.0;
            for (std::size_t j = reps.size() - opts.window;
                 j < reps.size(); ++j) {
                lo = std::min(lo, reps[j].seconds);
                hi = std::max(hi, reps[j].seconds);
            }
            if (lo > 0.0 && (hi - lo) / lo < opts.steadySpread)
                break;  // steady state reached
        }
    }
    return *std::min_element(reps.begin(), reps.end(),
                             [](const Sample &a, const Sample &b) {
                                 return a.seconds < b.seconds;
                             });
}

// --- JSON emission ----------------------------------------------------------

/** Accumulates metrics and writes the flat one-metric-per-line JSON. */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    void add(const std::string &key, double value)
    {
        metrics_.push_back({key, value});
    }

    /** Derive + add the standard throughput trio for one region. */
    void addThroughput(const std::string &prefix, const Sample &s,
                       double cycles, double flits)
    {
        if (s.seconds > 0.0) {
            add(prefix + "_cycles_per_sec", cycles / s.seconds);
            if (flits > 0.0) {
                add(prefix + "_flits_per_sec", flits / s.seconds);
                add(prefix + "_ns_per_flit", s.seconds * 1e9 / flits);
            }
        }
        if (cycles > 0.0) {
            add(prefix + "_allocs_per_cycle",
                static_cast<double>(s.allocs) / cycles);
        }
    }

    /**
     * Write to @p path and echo to stdout. Layout is load-bearing:
     * perf_gate.sh parses `"key": value,` one pair per line.
     */
    bool write(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n");
        std::fprintf(f, "\"schema\": \"nord-perf-v1\",\n");
        std::fprintf(f, "\"bench\": \"%s\",\n", bench_.c_str());
        std::fprintf(f, "\"rss_peak_mib\": %.3f", peakRssMiB());
        for (const auto &m : metrics_)
            std::fprintf(f, ",\n\"%s\": %.6g", m.first.c_str(),
                         m.second);
        std::fprintf(f, "\n}\n");
        std::fclose(f);

        std::printf("# %s\n", path.c_str());
        for (const auto &m : metrics_)
            std::printf("%-48s %14.6g\n", m.first.c_str(), m.second);
        return true;
    }

  private:
    std::string bench_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/** Output path: $NORD_BENCH_OUT or the current directory. */
inline std::string
outPath(const std::string &file)
{
    if (const char *dir = std::getenv("NORD_BENCH_OUT"))
        return std::string(dir) + "/" + file;
    return file;
}

}  // namespace perf
}  // namespace nord

#endif  // NORD_BENCH_PERF_UTIL_HH

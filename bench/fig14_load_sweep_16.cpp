/**
 * @file
 * Figure 14 reproduction: 16-node mesh, uniform random traffic, average
 * packet latency and NoC power across the full load range for No_PG,
 * Conv_PG_OPT and NoRD.
 *
 * Paper anchors (three regions): at low load NoRD beats Conv_PG_OPT on
 * both latency and power (paper example at 0.1: No_PG 24, Conv_PG_OPT 34,
 * NoRD 29 cycles); at medium-high load the three designs converge; in
 * saturation NoRD saturates slightly earlier (ring escape is less
 * flexible than XY escape).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    const double rates[] = {0.02, 0.05, 0.08, 0.10, 0.15, 0.20,
                            0.30, 0.40, 0.50, 0.55};
    const Cycle warmup = 10000;
    const Cycle measure = 100000;
    const PgDesign designs[] = {PgDesign::kNoPg, PgDesign::kConvPgOpt,
                                PgDesign::kNord};

    std::printf("=== Figure 14: 16-node uniform random load sweep ===\n");
    std::printf("%-8s | %-28s | %-28s\n", "",
                "avg latency (cycles)", "NoC power (W)");
    std::printf("%-8s | %8s %11s %7s | %8s %11s %7s\n", "rate", "No_PG",
                "Conv_PG_OPT", "NoRD", "No_PG", "Conv_PG_OPT", "NoRD");
    for (double rate : rates) {
        std::printf("%-8.2f |", rate);
        double lat[3];
        double pw[3];
        int i = 0;
        for (PgDesign d : designs) {
            RunResult r = runSynthetic(d, TrafficPattern::kUniformRandom,
                                       rate, pm, warmup, measure, 4, 4,
                                       21);
            lat[i] = r.avgLatency;
            pw[i] = r.powerW(pm);
            ++i;
        }
        std::printf(" %8.2f %11.2f %7.2f | %8.3f %11.3f %7.3f\n", lat[0],
                    lat[1], lat[2], pw[0], pw[1], pw[2]);
    }
    std::printf("\npaper reference @0.10: No_PG 24, Conv_PG_OPT 34, "
                "NoRD 29 cycles\n");
    return 0;
}

/**
 * @file
 * Figure 10 reproduction: overall NoC energy breakdown per benchmark and
 * design, normalized to No_PG: router static, router dynamic (incl. the
 * NI bypass, per Section 5.1), link static, link dynamic, PG overhead.
 *
 * Paper anchors: NoRD's dynamic-energy overhead is ~10.2% of dynamic
 * (~4.0% of total); NoRD's net NoC-energy savings are 9.1% vs No_PG,
 * 9.4% vs Conv_PG and 20.6% vs Conv_PG_OPT... (9.1% vs No_PG; the other
 * two follow from the per-design totals).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    auto campaign = runCampaign(pm);

    std::printf("=== Figure 10: NoC energy breakdown "
                "(%% of No_PG total) ===\n");
    std::printf("%-14s %-12s %8s %8s %8s %8s %8s %8s\n", "benchmark",
                "design", "rstatic", "rdyn", "lstatic", "ldyn", "pgovh",
                "total");
    double totalSum[4] = {0, 0, 0, 0};
    double dynSum[2] = {0, 0};  // No_PG vs NoRD dynamic (router+link)
    for (const CampaignRow &row : campaign) {
        const double base = row.byDesign[0].energy.total();
        for (int d = 0; d < 4; ++d) {
            const EnergyBreakdown &e = row.byDesign[d].energy;
            std::printf("%-14s %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% "
                        "%7.1f%% %7.1f%%\n",
                        d == 0 ? row.benchmark.c_str() : "",
                        pgDesignName(static_cast<PgDesign>(d)),
                        100.0 * e.routerStatic / base,
                        100.0 * e.routerDynamic / base,
                        100.0 * e.linkStatic / base,
                        100.0 * e.linkDynamic / base,
                        100.0 * e.pgOverhead / base,
                        100.0 * e.total() / base);
            totalSum[d] += e.total() / base;
        }
        dynSum[0] += row.byDesign[0].energy.routerDynamic +
                     row.byDesign[0].energy.linkDynamic;
        dynSum[1] += row.byDesign[3].energy.routerDynamic +
                     row.byDesign[3].energy.linkDynamic;
    }
    const double n = static_cast<double>(campaign.size());
    std::printf("\nAVG total: No_PG %.1f%%, Conv_PG %.1f%%, "
                "Conv_PG_OPT %.1f%%, NoRD %.1f%%\n",
                100.0 * totalSum[0] / n, 100.0 * totalSum[1] / n,
                100.0 * totalSum[2] / n, 100.0 * totalSum[3] / n);
    std::printf("NoRD net savings vs No_PG: %.1f%% (paper: 9.1%%)\n",
                100.0 * (1.0 - totalSum[3] / totalSum[0]));
    std::printf("NoRD dynamic-energy overhead vs No_PG: %.1f%% "
                "(paper: 10.2%%)\n",
                100.0 * (dynSum[1] / dynSum[0] - 1.0));
    return 0;
}

/**
 * @file
 * Kernel-layer throughput microbenchmark -> BENCH_kernel.json.
 *
 * Two scenarios, each measured with idle-skipping ON and OFF so the
 * tracked JSON records the optimization's effect (not just its
 * presence):
 *
 *  - probe_sparse: a bare SimKernel with 512 components of which only 8
 *    ever have work. The skip list turns the per-cycle walk from O(N)
 *    into O(active); this is the isolated cost of the kernel loop.
 *  - nord_lowload: an 8x8 NoRD mesh at 0.5% injection -- the paper's
 *    deep-sleep regime, where most routers are gated and their
 *    links are drained. This is the acceptance metric: skip-on must
 *    beat skip-off in cycles/sec on the full system.
 */

#include "perf_util.hh"

#include "network/noc_system.hh"
#include "sim/kernel.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

/** A component that is busy for the first `busyCycles` then parks. */
class WorkProbe : public Clocked
{
  public:
    explicit WorkProbe(bool busy) : busy_(busy) {}
    void tick(Cycle) override { acc_ += 1; }
    bool quiescent() const override { return !busy_; }
    std::string name() const override { return "work-probe"; }

  private:
    bool busy_;
    std::uint64_t acc_ = 0;
};

void
probeSparse(bool skip, Cycle cycles)
{
    constexpr int kProbes = 512;
    constexpr int kBusy = 8;
    std::vector<WorkProbe> probes;
    probes.reserve(kProbes);
    for (int i = 0; i < kProbes; ++i)
        probes.emplace_back(/*busy=*/i < kBusy);
    SimKernel kernel;
    for (auto &p : probes)
        kernel.add(&p);
    kernel.setSkipEnabled(skip);
    kernel.run(cycles);
}

/** Run an 8x8 NoRD mesh at low load; returns flits injected. */
std::uint64_t
nordLowLoad(bool skip, Cycle cycles)
{
    NocConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.design = PgDesign::kNord;
    cfg.perf.skipIdle = skip;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.005, 7);
    sys.setWorkload(&traffic);
    sys.run(cycles);
    return sys.stats().flitsInjected();
}

}  // namespace
}  // namespace nord

int
main()
{
    using namespace nord;
    using namespace nord::perf;

    const Cycle probeCycles = quickMode() ? 100'000 : 400'000;
    const Cycle nocCycles = quickMode() ? 5'000 : 20'000;

    JsonReport report("kernel");

    const Sample sparseSkip =
        measureSteady([&] { probeSparse(true, probeCycles); });
    const Sample sparseFull =
        measureSteady([&] { probeSparse(false, probeCycles); });
    // No allocs/cycle here: probe ticks never allocate, so the metric
    // would only measure harness fixed cost divided by the cycle count.
    if (sparseSkip.seconds > 0.0) {
        report.add("probe_sparse_skip_cycles_per_sec",
                   static_cast<double>(probeCycles) / sparseSkip.seconds);
    }
    if (sparseFull.seconds > 0.0) {
        report.add("probe_sparse_noskip_cycles_per_sec",
                   static_cast<double>(probeCycles) / sparseFull.seconds);
    }
    if (sparseSkip.seconds > 0.0) {
        report.add("probe_sparse_skip_speedup",
                   sparseFull.seconds / sparseSkip.seconds);
    }

    std::uint64_t flits = 0;
    const Sample nordSkip =
        measureSteady([&] { flits = nordLowLoad(true, nocCycles); });
    const Sample nordFull =
        measureSteady([&] { nordLowLoad(false, nocCycles); });
    report.addThroughput("nord_lowload_skip", nordSkip,
                         static_cast<double>(nocCycles),
                         static_cast<double>(flits));
    report.addThroughput("nord_lowload_noskip", nordFull,
                         static_cast<double>(nocCycles),
                         static_cast<double>(flits));
    if (nordSkip.seconds > 0.0) {
        report.add("nord_lowload_skip_speedup",
                   nordFull.seconds / nordSkip.seconds);
    }

    return report.write(outPath("BENCH_kernel.json")) ? 0 : 1;
}

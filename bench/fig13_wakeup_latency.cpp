/**
 * @file
 * Figure 13 reproduction: impact of the wakeup latency (9..18 cycles) on
 * average packet latency at the PARSEC-average load, uniform random.
 *
 * Paper anchors: Conv_PG and Conv_PG_OPT degrade by ~1.5x as the wakeup
 * latency grows from 9 to 18 cycles; NoRD stays flat because the bypass
 * removes the wakeup from the critical path entirely.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    const double rate = 0.05;  // PARSEC-average network load
    const Cycle warmup = 10000;
    const Cycle measure = 150000;

    std::printf("=== Figure 13: latency vs wakeup latency "
                "(uniform random @ %.2f flits/node/cycle) ===\n", rate);
    std::printf("%-10s %9s %12s %8s\n", "wakeup", "Conv_PG",
                "Conv_PG_OPT", "NoRD");
    double first[4] = {0, 0, 0, 0};
    double last[4] = {0, 0, 0, 0};
    const int lats[] = {9, 12, 15, 18};
    for (int wl : lats) {
        std::printf("%-10d", wl);
        for (int d = 1; d < 4; ++d) {
            NocConfig cfg = makeConfig(static_cast<PgDesign>(d));
            cfg.wakeupLatency = wl;
            RunResult r = runSynthetic(static_cast<PgDesign>(d),
                                       TrafficPattern::kUniformRandom,
                                       rate, pm, warmup, measure, 4, 4, 5,
                                       &cfg);
            std::printf(" %9.2f%s", r.avgLatency, d == 2 ? "  " : "");
            if (wl == lats[0])
                first[d] = r.avgLatency;
            last[d] = r.avgLatency;
        }
        std::printf("\n");
    }
    std::printf("\nlatency growth 9 -> 18 cycles:\n");
    std::printf("  Conv_PG     %.2fx (paper: ~1.5x)\n", last[1] / first[1]);
    std::printf("  Conv_PG_OPT %.2fx (paper: ~1.5x)\n", last[2] / first[2]);
    std::printf("  NoRD        %.2fx (paper: ~1.0x, flat)\n",
                last[3] / first[3]);
    return 0;
}

/**
 * @file
 * Resilience sweep: delivered fraction, tail latency and energy overhead
 * of the four designs under an escalating transient-fault campaign, plus
 * a permanently dead router scenario.
 *
 * Every configuration runs with the end-to-end reliability layer on and
 * the invariant auditor in recover mode, so the numbers measure the cost
 * of *successful* recovery, not silent corruption. Results are emitted as
 * JSON lines (one object per run) for downstream plotting, with a short
 * human-readable table at the end.
 *
 * Expected shape: all designs hold 100% delivery through retransmission
 * at 1e-4 transients/link/cycle with a latency tail and a small energy
 * overhead that grow with the fault rate. With a dead router, NoRD keeps
 * the victim's node reachable over the bypass ring (delivered fraction
 * stays 1.0) while the baselines can only eat what routes into the dead
 * router and account the loss.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace {

using namespace nord;
using namespace nord::bench;

struct SweepResult
{
    std::string scenario;
    PgDesign design = PgDesign::kNoPg;
    double rate = 0.0;
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t failed = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t recovered = 0;
    std::uint64_t eaten = 0;
    std::uint64_t injectedFaults = 0;
    bool drained = false;
    double avgLatency = 0.0;
    double p99Latency = 0.0;
    double offFraction = 0.0;
    double energyJ = 0.0;

    double deliveredFraction() const
    {
        return created > 0
            ? static_cast<double>(delivered) / static_cast<double>(created)
            : 1.0;
    }
};

SweepResult
runCampaign(PgDesign design, double rate, NodeId deadRouter, int rows,
            int cols, Cycle measure, const PowerModel &pm)
{
    NocConfig cfg = makeConfig(design, rows, cols);
    cfg.fault.enabled = true;
    cfg.fault.e2e = true;
    cfg.fault.flitCorruptRate = rate;
    cfg.fault.flitDropRate = rate;
    cfg.verify.interval = 256;
    cfg.verify.policy = AuditPolicy::kRecover;

    NocSystem sys(cfg);
    if (deadRouter != kInvalidNode)
        sys.killRouter(deadRouter);

    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.10, 1);
    sys.setWorkload(&traffic);
    sys.run(measure);
    sys.setWorkload(nullptr);  // stop injecting, let recovery finish

    SweepResult r;
    r.scenario = deadRouter != kInvalidNode ? "dead-router" : "transient";
    r.design = design;
    r.rate = rate;
    r.drained = sys.runToCompletion(measure + 500000);
    const RunResult run = summarize(sys, pm);
    const NetworkStats &st = sys.stats();
    const FlowStats flows = st.flowTotals();
    r.created = st.packetsCreated();
    r.delivered = st.packetsDelivered();
    r.failed = st.packetsFailed();
    r.retransmits = flows.retransmits;
    r.recovered = flows.recovered;
    r.eaten = st.flitsEaten();
    r.injectedFaults = sys.injector()->counts().total();
    r.avgLatency = run.avgLatency;
    r.p99Latency = st.latencyPercentile(0.99);
    r.offFraction = run.offFraction;
    r.energyJ = run.energy.total();
    return r;
}

void
emitJson(const SweepResult &r, double energyBaselineJ)
{
    std::printf(
        "{\"scenario\":\"%s\",\"design\":\"%s\",\"faultRate\":%g,"
        "\"created\":%llu,\"delivered\":%llu,\"failed\":%llu,"
        "\"deliveredFraction\":%.6f,\"retransmits\":%llu,"
        "\"recovered\":%llu,\"flitsEaten\":%llu,\"injectedFaults\":%llu,"
        "\"drained\":%s,\"avgLatency\":%.3f,\"p99Latency\":%.3f,"
        "\"offFraction\":%.4f,\"energyJ\":%.6e,\"energyOverhead\":%.4f}\n",
        r.scenario.c_str(), pgDesignName(r.design), r.rate,
        static_cast<unsigned long long>(r.created),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.failed), r.deliveredFraction(),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.recovered),
        static_cast<unsigned long long>(r.eaten),
        static_cast<unsigned long long>(r.injectedFaults),
        r.drained ? "true" : "false", r.avgLatency, r.p99Latency,
        r.offFraction, r.energyJ,
        energyBaselineJ > 0 ? r.energyJ / energyBaselineJ : 1.0);
}

}  // namespace

int
main()
{
    const bool quick = quickMode();
    const int rows = quick ? 4 : 8;
    const int cols = rows;
    const Cycle measure = quick ? 2000 : 5000;
    const NodeId center =
        static_cast<NodeId>((rows / 2) * cols + cols / 2);
    std::vector<double> rates = quick
        ? std::vector<double>{0.0, 1e-4}
        : std::vector<double>{0.0, 1e-5, 1e-4, 1e-3};

    PowerModel pm;
    std::vector<SweepResult> results;

    std::fprintf(stderr,
                 "=== Resilience sweep: %dx%d mesh, %llu cycles/run ===\n",
                 rows, cols, static_cast<unsigned long long>(measure));
    for (int d = 0; d < 4; ++d) {
        const PgDesign design = static_cast<PgDesign>(d);
        double baselineJ = 0.0;
        for (double rate : rates) {
            SweepResult r = runCampaign(design, rate, kInvalidNode, rows,
                                        cols, measure, pm);
            if (rate == 0.0)
                baselineJ = r.energyJ;
            emitJson(r, baselineJ);
            results.push_back(r);
        }
        // Permanently dead center router, no transients on top.
        SweepResult r = runCampaign(design, 0.0, center, rows, cols,
                                    measure, pm);
        emitJson(r, baselineJ);
        results.push_back(r);
        std::fprintf(stderr, "  [sweep] %s done\n", pgDesignName(design));
    }

    std::fprintf(stderr, "\n%-12s %-12s %9s %10s %9s %9s\n", "design",
                 "scenario", "rate", "delivered", "p99", "retrans");
    for (const SweepResult &r : results) {
        std::fprintf(stderr, "%-12s %-12s %9g %9.2f%% %9.1f %9llu\n",
                     pgDesignName(r.design), r.scenario.c_str(), r.rate,
                     100.0 * r.deliveredFraction(), r.p99Latency,
                     static_cast<unsigned long long>(r.retransmits));
    }
    return 0;
}

/**
 * @file
 * Resilience sweep: delivered fraction, tail latency and energy overhead
 * of the four designs under an escalating transient-fault campaign, plus
 * a permanently dead router scenario.
 *
 * Every configuration runs with the end-to-end reliability layer on and
 * the invariant auditor in recover mode, so the numbers measure the cost
 * of *successful* recovery, not silent corruption. Results are emitted as
 * JSON lines (one object per run) for downstream plotting, with a short
 * human-readable table at the end.
 *
 * Expected shape: all designs hold 100% delivery through retransmission
 * at 1e-4 transients/link/cycle with a latency tail and a small energy
 * overhead that grow with the fault rate. With a dead router, NoRD keeps
 * the victim's node reachable over the bypass ring (delivered fraction
 * stays 1.0) while the baselines can only eat what routes into the dead
 * router and account the loss.
 *
 * The campaign itself is resilient (see DESIGN.md "Checkpoint/restore"):
 *
 *   --checkpoint-every=N   checkpoint the campaign every N cycles
 *   --checkpoint=PATH      checkpoint file (default resilience_sweep.ckpt)
 *   --resume-from=PATH     restore a killed campaign and continue; the
 *                          resumed run is bit-exact with an uninterrupted
 *                          one (identical JSON output)
 *   --supervise            run under a fork-based supervisor that kills a
 *                          hung campaign (no checkpoint progress) and
 *                          restarts from the last checkpoint with
 *                          exponential backoff
 *   --hang-timeout=SEC     supervisor hang threshold (default 300)
 *   --max-retries=N        supervisor restart budget (default 3)
 *   --out=FILE             write the JSON lines to FILE instead of stdout
 *   --min-delivered=F      fail when a zero-fault-rate transient run
 *                          delivers less than this fraction
 *                          (default 0.99)
 *
 * Exit codes follow the campaign taxonomy (src/campaign/exit_codes.hh),
 * which is what lets a supervisor separate "retry me" from "quarantine
 * me": 10 = the delivery gate failed (deterministic simulation result),
 * 11 = bad configuration / stale checkpoint fingerprint (deterministic),
 * 12 = infrastructure trouble (unreadable checkpoint, unwritable output;
 * transient, retry may succeed).
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"

namespace {

using namespace nord;
using namespace nord::bench;

struct SweepResult
{
    std::string scenario;
    PgDesign design = PgDesign::kNoPg;
    double rate = 0.0;
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t failed = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t recovered = 0;
    std::uint64_t eaten = 0;
    std::uint64_t injectedFaults = 0;
    bool drained = false;
    double avgLatency = 0.0;
    double p99Latency = 0.0;
    double offFraction = 0.0;
    double energyJ = 0.0;

    double deliveredFraction() const
    {
        return created > 0
            ? static_cast<double>(delivered) / static_cast<double>(created)
            : 1.0;
    }
};

void
ioSweepResult(StateSerializer &s, SweepResult &r)
{
    s.io(r.scenario);
    s.io(r.design);
    s.io(r.rate);
    s.io(r.created);
    s.io(r.delivered);
    s.io(r.failed);
    s.io(r.retransmits);
    s.io(r.recovered);
    s.io(r.eaten);
    s.io(r.injectedFaults);
    s.io(r.drained);
    s.io(r.avgLatency);
    s.io(r.p99Latency);
    s.io(r.offFraction);
    s.io(r.energyJ);
}

/** One campaign run in the fixed sweep order. */
struct RunSpec
{
    PgDesign design = PgDesign::kNoPg;
    double rate = 0.0;
    NodeId deadRouter = kInvalidNode;
};

/** Campaign-run phase recorded in a checkpoint. */
enum : std::uint8_t
{
    kPhaseMeasure = 0,   ///< workload attached, injecting
    kPhaseDrain = 1,     ///< workload detached, recovery finishing
    kPhaseBoundary = 2,  ///< between runs (no system payload)
};

struct Options
{
    std::string checkpointPath;
    Cycle checkpointEvery = 0;
    bool resume = false;
    bool supervise = false;
    double hangTimeoutSec = 300.0;
    int maxRetries = 3;
    std::string outPath;
    double minDelivered = 0.99;
};

/** Checkpointing context threaded through the campaign. */
struct Ckpt
{
    std::string path;
    Cycle every = 0;

    // Pending restore, consumed by the first run executed after resume.
    std::unique_ptr<StateSerializer> restore;
    std::uint8_t restorePhase = kPhaseBoundary;
    std::uint64_t restoreFingerprint = 0;

    bool enabled() const { return every > 0 && !path.empty(); }
};

NocConfig
runConfig(const RunSpec &spec, int rows, int cols)
{
    NocConfig cfg = makeConfig(spec.design, rows, cols);
    cfg.fault.enabled = true;
    cfg.fault.e2e = true;
    cfg.fault.flitCorruptRate = spec.rate;
    cfg.fault.flitDropRate = spec.rate;
    cfg.verify.interval = 256;
    cfg.verify.policy = AuditPolicy::kRecover;
    return cfg;
}

/**
 * Checkpoint the whole campaign: completed results, the index and phase
 * of the in-flight run, then the full network state. @p sys is null for
 * run-boundary checkpoints (no system is alive between runs).
 */
void
writeCampaignCheckpoint(const Ckpt &ck, NocSystem *sys,
                        std::vector<SweepResult> &results,
                        std::uint64_t runIndex, std::uint8_t phase)
{
    StateSerializer s(SerialMode::kSave);
    s.section(StateSerializer::tag4("CAMP"));
    s.io(runIndex);
    s.io(phase);
    s.ioSequence(results, [&s](SweepResult &r) { ioSweepResult(s, r); });
    if (phase != kPhaseBoundary)
        sys->saveState(s);
    if (!s.ok()) {
        std::fprintf(stderr, "warning: checkpoint serialization failed: "
                     "%s\n", s.error().c_str());
        return;
    }
    CheckpointMeta meta;
    meta.version = kCheckpointVersion;
    meta.configFingerprint =
        phase != kPhaseBoundary ? sys->configFingerprint() : 0;
    meta.cycle = phase != kPhaseBoundary ? sys->now() : 0;
    meta.user = {runIndex, phase, 0, 0};
    std::string err;
    if (!writeCheckpointFile(ck.path, meta, s.buffer(), &err))
        std::fprintf(stderr, "warning: checkpoint write failed: %s\n",
                     err.c_str());
}

/**
 * Read a campaign checkpoint: refill @p results, return the in-flight run
 * index and leave the system payload pending in @p ck for that run to
 * consume. Returns false (campaign starts from scratch) when the file is
 * unreadable.
 */
bool
readCampaignCheckpoint(Ckpt &ck, const std::string &path,
                       std::vector<SweepResult> &results,
                       std::uint64_t *runIndex)
{
    CheckpointMeta meta;
    std::vector<std::uint8_t> payload;
    std::string err;
    if (!readCheckpointFile(path, &meta, &payload, &err)) {
        std::fprintf(stderr, "cannot resume from %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    auto s = std::make_unique<StateSerializer>(std::move(payload));
    s->section(StateSerializer::tag4("CAMP"));
    std::uint64_t idx = 0;
    std::uint8_t phase = kPhaseBoundary;
    s->io(idx);
    s->io(phase);
    s->ioSequence(results, [&s](SweepResult &r) { ioSweepResult(*s, r); });
    if (!s->ok()) {
        std::fprintf(stderr, "cannot resume from %s: %s\n", path.c_str(),
                     s->error().c_str());
        results.clear();
        return false;
    }
    *runIndex = idx;
    if (phase != kPhaseBoundary) {
        ck.restore = std::move(s);
        ck.restorePhase = phase;
        ck.restoreFingerprint = meta.configFingerprint;
    }
    std::fprintf(stderr,
                 "[resume] %zu completed runs, continuing run %llu "
                 "(%s phase) from cycle %llu\n",
                 results.size(), static_cast<unsigned long long>(idx),
                 phase == kPhaseMeasure ? "measure"
                 : phase == kPhaseDrain ? "drain" : "boundary",
                 static_cast<unsigned long long>(meta.cycle));
    return true;
}

SweepResult
runCampaign(const RunSpec &spec, int rows, int cols, Cycle measure,
            const PowerModel &pm, Ckpt &ck,
            std::vector<SweepResult> &results, std::uint64_t runIndex)
{
    const NocConfig cfg = runConfig(spec, rows, cols);
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.10, 1);

    std::uint8_t phase = kPhaseMeasure;
    if (ck.restore) {
        // Resume the interrupted run: the snapshot already contains every
        // side effect (killed router, injected faults, auditor history),
        // so the system is rebuilt bare and overwritten wholesale.
        phase = ck.restorePhase;
        if (ck.restoreFingerprint != sys.configFingerprint()) {
            // Deterministic: the checkpoint can never match this build
            // again, so retrying under a supervisor must not happen.
            std::fprintf(stderr, "fatal: checkpoint configuration "
                         "fingerprint mismatch (campaign code or config "
                         "changed since the checkpoint was written)\n");
            std::exit(campaign::kExitBadConfig);
        }
        if (phase == kPhaseMeasure)
            sys.setWorkload(&traffic);
        std::unique_ptr<StateSerializer> s = std::move(ck.restore);
        sys.loadState(*s);
        if (!s->ok() || !s->exhausted()) {
            // Transient: discard the damaged artifact so the retry
            // degrades to recomputation instead of hitting the same
            // corrupt bytes forever.
            std::fprintf(stderr, "fatal: checkpoint restore failed: %s\n",
                         s->ok() ? "trailing bytes" : s->error().c_str());
            if (std::remove(ck.path.c_str()) != 0) {
                // Best effort; the supervisor may still restart clean.
            }
            std::exit(campaign::kExitInfraFailure);
        }
    } else {
        if (spec.deadRouter != kInvalidNode)
            sys.killRouter(spec.deadRouter);
        sys.setWorkload(&traffic);
    }

    if (phase == kPhaseMeasure) {
        while (sys.now() < measure) {
            const Cycle remaining = measure - sys.now();
            sys.run(ck.every > 0 ? std::min(ck.every, remaining)
                                 : remaining);
            if (ck.enabled())
                writeCampaignCheckpoint(ck, &sys, results, runIndex,
                                        kPhaseMeasure);
        }
        sys.setWorkload(nullptr);  // stop injecting, let recovery finish
        phase = kPhaseDrain;
        if (ck.enabled())
            writeCampaignCheckpoint(ck, &sys, results, runIndex,
                                    kPhaseDrain);
    }

    SweepResult r;
    r.scenario =
        spec.deadRouter != kInvalidNode ? "dead-router" : "transient";
    r.design = spec.design;
    r.rate = spec.rate;

    // Drain with the same total budget an uninterrupted
    // runToCompletion(measure + 500000) would get; the completion
    // predicate is evaluated every cycle either way, so chunking changes
    // nothing.
    const Cycle limit = measure + (measure + 500000);
    bool done = sys.completionReached();
    while (!done && sys.now() < limit) {
        const Cycle remaining = limit - sys.now();
        done = sys.runTowardCompletion(
            ck.every > 0 ? std::min(ck.every, remaining) : remaining);
        if (ck.enabled() && !done)
            writeCampaignCheckpoint(ck, &sys, results, runIndex,
                                    kPhaseDrain);
    }
    r.drained = done;
    sys.finalizeStats();

    const RunResult run = summarize(sys, pm);
    const NetworkStats &st = sys.stats();
    const FlowStats flows = st.flowTotals();
    r.created = st.packetsCreated();
    r.delivered = st.packetsDelivered();
    r.failed = st.packetsFailed();
    r.retransmits = flows.retransmits;
    r.recovered = flows.recovered;
    r.eaten = st.flitsEaten();
    r.injectedFaults = sys.injector()->counts().total();
    r.avgLatency = run.avgLatency;
    r.p99Latency = st.latencyPercentile(0.99);
    r.offFraction = run.offFraction;
    r.energyJ = run.energy.total();
    return r;
}

void
emitJson(std::FILE *out, const SweepResult &r, double energyBaselineJ)
{
    std::fprintf(
        out,
        "{\"scenario\":\"%s\",\"design\":\"%s\",\"faultRate\":%g,"
        "\"created\":%llu,\"delivered\":%llu,\"failed\":%llu,"
        "\"deliveredFraction\":%.6f,\"retransmits\":%llu,"
        "\"recovered\":%llu,\"flitsEaten\":%llu,\"injectedFaults\":%llu,"
        "\"drained\":%s,\"avgLatency\":%.3f,\"p99Latency\":%.3f,"
        "\"offFraction\":%.4f,\"energyJ\":%.6e,\"energyOverhead\":%.4f}\n",
        r.scenario.c_str(), pgDesignName(r.design), r.rate,
        static_cast<unsigned long long>(r.created),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.failed), r.deliveredFraction(),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.recovered),
        static_cast<unsigned long long>(r.eaten),
        static_cast<unsigned long long>(r.injectedFaults),
        r.drained ? "true" : "false", r.avgLatency, r.p99Latency,
        r.offFraction, r.energyJ,
        energyBaselineJ > 0 ? r.energyJ / energyBaselineJ : 1.0);
}

bool
parseArgs(int argc, char **argv, Options *opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *flag) -> const char * {
            const size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
                arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = value("--checkpoint-every")) {
            opt->checkpointEvery = static_cast<Cycle>(std::atoll(v));
        } else if (const char *v = value("--checkpoint")) {
            opt->checkpointPath = v;
        } else if (const char *v = value("--resume-from")) {
            opt->checkpointPath = v;
            opt->resume = true;
        } else if (arg == "--supervise") {
            opt->supervise = true;
        } else if (const char *v = value("--hang-timeout")) {
            opt->hangTimeoutSec = std::atof(v);
        } else if (const char *v = value("--max-retries")) {
            opt->maxRetries = std::atoi(v);
        } else if (const char *v = value("--out")) {
            opt->outPath = v;
        } else if (const char *v = value("--min-delivered")) {
            opt->minDelivered = std::atof(v);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return false;
        }
    }
    if ((opt->checkpointEvery > 0 || opt->resume) &&
        opt->checkpointPath.empty())
        opt->checkpointPath = "resilience_sweep.ckpt";
    return true;
}

int
runWholeCampaign(const Options &opt, bool resume)
{
    const bool quick = quickMode();
    const int rows = quick ? 4 : 8;
    const int cols = rows;
    const Cycle measure = quick ? 2000 : 5000;
    const NodeId center =
        static_cast<NodeId>((rows / 2) * cols + cols / 2);
    const std::vector<double> rates = quick
        ? std::vector<double>{0.0, 1e-4}
        : std::vector<double>{0.0, 1e-5, 1e-4, 1e-3};

    // The fixed run order a checkpoint's run index refers to.
    std::vector<RunSpec> specs;
    for (int d = 0; d < 4; ++d) {
        for (double rate : rates)
            specs.push_back({static_cast<PgDesign>(d), rate,
                             kInvalidNode});
        // Permanently dead center router, no transients on top.
        specs.push_back({static_cast<PgDesign>(d), 0.0, center});
    }

    Ckpt ck;
    ck.path = opt.checkpointPath;
    ck.every = opt.checkpointEvery;

    PowerModel pm;
    std::vector<SweepResult> results;
    std::uint64_t startRun = 0;
    if (resume && !opt.checkpointPath.empty())
        readCampaignCheckpoint(ck, opt.checkpointPath, results,
                               &startRun);

    std::fprintf(stderr,
                 "=== Resilience sweep: %dx%d mesh, %llu cycles/run ===\n",
                 rows, cols, static_cast<unsigned long long>(measure));
    for (std::uint64_t i = startRun; i < specs.size(); ++i) {
        SweepResult r = runCampaign(specs[i], rows, cols, measure, pm, ck,
                                    results, i);
        results.push_back(std::move(r));
        if (ck.enabled())
            writeCampaignCheckpoint(ck, nullptr, results, i + 1,
                                    kPhaseBoundary);
        if (specs[i].deadRouter != kInvalidNode)
            std::fprintf(stderr, "  [sweep] %s done\n",
                         pgDesignName(specs[i].design));
    }

    // Emit the JSON lines in run order, with each design's energy
    // overhead normalized to its own zero-rate transient run.
    std::FILE *out = stdout;
    if (!opt.outPath.empty()) {
        out = std::fopen(opt.outPath.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         opt.outPath.c_str());
            return campaign::kExitInfraFailure;
        }
    }
    double baselineJ[4] = {0, 0, 0, 0};
    for (const SweepResult &r : results) {
        if (r.scenario == "transient" && r.rate == 0.0)
            baselineJ[static_cast<int>(r.design)] = r.energyJ;
    }
    for (const SweepResult &r : results)
        emitJson(out, r, baselineJ[static_cast<int>(r.design)]);
    if (out != stdout)
        std::fclose(out);

    std::fprintf(stderr, "\n%-12s %-12s %9s %10s %9s %9s\n", "design",
                 "scenario", "rate", "delivered", "p99", "retrans");
    for (const SweepResult &r : results) {
        std::fprintf(stderr, "%-12s %-12s %9g %9.2f%% %9.1f %9llu\n",
                     pgDesignName(r.design), r.scenario.c_str(), r.rate,
                     100.0 * r.deliveredFraction(), r.p99Latency,
                     static_cast<unsigned long long>(r.retransmits));
    }

    // Delivery gate: a fault-free run that loses packets is a regression,
    // not noise -- fail loudly so CI catches it.
    int exitCode = 0;
    for (const SweepResult &r : results) {
        if (r.scenario != "transient" || r.rate != 0.0)
            continue;
        if (r.deliveredFraction() < opt.minDelivered) {
            std::fprintf(stderr,
                         "FAIL: %s delivered %.4f < --min-delivered "
                         "%.4f at fault rate 0\n",
                         pgDesignName(r.design), r.deliveredFraction(),
                         opt.minDelivered);
            exitCode = campaign::kExitGateFailure;
        }
    }
    return exitCode;
}

}  // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, &opt))
        return campaign::kExitBadConfig;

    if (opt.supervise) {
        if (opt.checkpointPath.empty())
            opt.checkpointPath = "resilience_sweep.ckpt";
        if (opt.checkpointEvery == 0)
            opt.checkpointEvery = 1000;
        SupervisorOptions sup;
        sup.hangTimeoutSec = opt.hangTimeoutSec;
        sup.maxRetries = opt.maxRetries;
        return runSupervised(opt.checkpointPath, sup,
                             [&opt](bool resume) {
                                 return runWholeCampaign(
                                     opt, resume || opt.resume);
                             });
    }
    return runWholeCampaign(opt, opt.resume);
}

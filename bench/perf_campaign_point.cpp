/**
 * @file
 * Full-stack campaign-point benchmark -> BENCH_campaign.json.
 *
 * One representative resilience-campaign point: an 8x8 NoRD mesh at
 * moderate load with the fault injector, E2E retransmission and the
 * periodic auditor all enabled, plus one checkpoint save+load in the
 * middle -- i.e. everything a real campaign executor pays per point.
 * This is the end-to-end number the perf gate watches: a regression
 * anywhere in the stack (kernel walk, flit storage, fault hooks,
 * audit sweeps, serialization) lands here.
 */

#include "perf_util.hh"

#include <cstdio>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

/** Run one campaign point; returns flits injected. */
std::uint64_t
campaignPoint(Cycle cycles, const std::string &ckptPath)
{
    NocConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.design = PgDesign::kNord;
    cfg.fault.enabled = true;
    cfg.fault.e2e = true;
    cfg.fault.flitCorruptRate = 1e-4;
    cfg.fault.flitDropRate = 1e-4;
    cfg.fault.creditLeakRate = 5e-5;
    cfg.verify.interval = 64;
    cfg.verify.policy = AuditPolicy::kRecover;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.06, 13);
    sys.setWorkload(&traffic);
    sys.run(cycles / 2);
    std::string err;
    if (!sys.saveCheckpoint(ckptPath, {}, &err) ||
        !sys.loadCheckpoint(ckptPath, nullptr, &err)) {
        std::fprintf(stderr, "checkpoint roundtrip failed: %s\n",
                     err.c_str());
    }
    sys.run(cycles - cycles / 2);
    return sys.stats().flitsInjected();
}

}  // namespace
}  // namespace nord

int
main()
{
    using namespace nord;
    using namespace nord::perf;

    const Cycle cycles = quickMode() ? 4'000 : 16'000;
    const std::string ckpt = outPath("BENCH_campaign_point.ckpt");

    JsonReport report("campaign");

    std::uint64_t flits = 0;
    const Sample s =
        measureSteady([&] { flits = campaignPoint(cycles, ckpt); });
    report.addThroughput("campaign_point", s,
                         static_cast<double>(cycles),
                         static_cast<double>(flits));

    std::remove(ckpt.c_str());
    return report.write(outPath("BENCH_campaign.json")) ? 0 : 1;
}

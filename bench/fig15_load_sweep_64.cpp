/**
 * @file
 * Figure 15 reproduction: 64-node (8x8) mesh load sweeps under uniform
 * random and bit-complement traffic -- latency and NoC power.
 *
 * Paper anchors: NoRD's low-load advantage over Conv_PG_OPT grows with
 * network size (paper example @0.10 uniform: No_PG 36, Conv_PG_OPT 52,
 * NoRD 44 cycles); bit-complement saturates earlier than uniform.
 */

#include <cstdio>

#include "bench_util.hh"

namespace {

void
sweep(nord::TrafficPattern pattern, const double *rates, int n,
      const nord::PowerModel &pm)
{
    using namespace nord;
    using namespace nord::bench;

    const Cycle warmup = 10000;
    const Cycle measure = 60000;
    const PgDesign designs[] = {PgDesign::kNoPg, PgDesign::kConvPgOpt,
                                PgDesign::kNord};

    std::printf("--- %s ---\n", trafficPatternName(pattern));
    std::printf("%-8s | %8s %11s %7s | %8s %11s %7s\n", "rate", "No_PG",
                "Conv_PG_OPT", "NoRD", "No_PG", "Conv_PG_OPT", "NoRD");
    for (int i = 0; i < n; ++i) {
        std::printf("%-8.3f |", rates[i]);
        double lat[3];
        double pw[3];
        int k = 0;
        for (PgDesign d : designs) {
            RunResult r = runSynthetic(d, pattern, rates[i], pm, warmup,
                                       measure, 8, 8, 33);
            lat[k] = r.avgLatency;
            pw[k] = r.powerW(pm);
            ++k;
        }
        std::printf(" %8.2f %11.2f %7.2f | %8.3f %11.3f %7.3f\n", lat[0],
                    lat[1], lat[2], pw[0], pw[1], pw[2]);
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    using namespace nord;
    using namespace nord::bench;

    PowerModel pm;
    std::printf("=== Figure 15: 64-node load sweeps ===\n");
    const double uniformRates[] = {0.02, 0.05, 0.10, 0.15, 0.20, 0.28,
                                   0.35};
    sweep(TrafficPattern::kUniformRandom, uniformRates, 7, pm);
    const double bitcompRates[] = {0.02, 0.04, 0.06, 0.08, 0.10, 0.14,
                                   0.18};
    sweep(TrafficPattern::kBitComplement, bitcompRates, 7, pm);
    std::printf("paper reference @0.10 uniform: No_PG 36, "
                "Conv_PG_OPT 52, NoRD 44 cycles\n");
    return 0;
}

/**
 * @file
 * Section 6.8 reproduction: area overhead of the NoRD bypass hardware.
 *
 * Paper anchors: a well-designed power-gating block costs 4-10% of the
 * gated area; NoRD's added bypass hardware (latches, demux/mux,
 * forwarding control) costs only 3.1% over Conv_PG_OPT. The fine-grained
 * alternative of [25] saves an extra 17.6% static energy but costs 15.9%
 * area, making NoRD the more cost-effective point.
 */

#include <cstdio>

#include "network/noc_config.hh"
#include "power/area_model.hh"

int
main()
{
    using namespace nord;

    NocConfig cfg;  // Table 1 defaults
    AreaModel area(cfg);

    std::printf("=== Section 6.8: router area accounting "
                "(normalized units) ===\n");
    std::printf("%-24s %10.0f\n", "input buffers", area.bufferArea());
    std::printf("%-24s %10.0f\n", "allocators/control",
                area.controlArea());
    std::printf("%-24s %10.0f\n", "crossbar", area.crossbarArea());
    std::printf("%-24s %10.0f\n", "base router", area.baseRouterArea());
    std::printf("%-24s %10.0f (%.1f%% of gated area; paper: 4-10%%)\n",
                "PG switches+distrib.", area.pgSwitchArea(),
                100.0 * area.pgSwitchArea() / area.baseRouterArea());
    std::printf("%-24s %10.0f\n", "NoRD bypass hardware",
                area.nordBypassArea());

    std::printf("\n%-24s %10.0f\n", "No_PG total",
                area.totalArea(PgDesign::kNoPg));
    std::printf("%-24s %10.0f\n", "Conv_PG_OPT total",
                area.totalArea(PgDesign::kConvPgOpt));
    std::printf("%-24s %10.0f\n", "NoRD total",
                area.totalArea(PgDesign::kNord));
    std::printf("\nNoRD overhead vs Conv_PG_OPT: %.1f%% (paper: 3.1%%)\n",
                100.0 * area.overheadVs(PgDesign::kNord,
                                        PgDesign::kConvPgOpt));
    return 0;
}

/**
 * @file
 * nord-access-graph CLI: run a traced campaign per design and emit the
 * component-interaction graph the shard-safety analysis is built on
 * (see src/verify/access/access_tracker.hh).
 *
 * For each selected design a 4x4 network runs a uniform-random campaign
 * with access tracking on, plus (optionally) a fault campaign, then the
 * tracker's observations are verified against the declared ownership
 * contracts. With --check the tool exits 1 on any undeclared
 * cross-component write or registration-order violation -- the CI gate
 * that keeps the path to the parallel kernel clear.
 *
 * Usage:
 *   nord-access-graph [--design nopg|convpg|convpgopt|nord|all]
 *                     [--cycles N] [--faults] [--check]
 *                     [--dot-dir DIR] [--json-dir DIR] [--quiet]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"
#include "verify/access/access_tracker.hh"
#include "verify/static/config_registry.hh"

using namespace nord;

namespace {

struct CliOptions
{
    std::vector<PgDesign> designs = {PgDesign::kNoPg, PgDesign::kConvPg,
                                     PgDesign::kConvPgOpt,
                                     PgDesign::kNord};
    Cycle cycles = 20000;
    bool faults = false;
    bool check = false;
    bool quiet = false;
    std::string dotDir;
    std::string jsonDir;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--design <name>|all] [--cycles N] [--faults]"
                 " [--check] [--dot-dir DIR] [--json-dir DIR] [--quiet]\n",
                 argv0);
    return 2;
}

/** One traced campaign; returns the number of contract violations. */
size_t
runDesign(PgDesign design, const CliOptions &cli, bool withFaults)
{
    NocConfig config = makeShippedConfig(design, 4, 4);
    config.verify.trackAccess = true;
    config.verify.interval = 500;  // include auditor sweep edges
    if (withFaults) {
        // Credit leaks are announced to the auditor and repaired in
        // place, so the campaign stays clean while exercising the
        // fault/repair channels of the interaction graph.
        config.fault.enabled = true;
        config.fault.creditLeakRate = 5e-4;
        config.verify.policy = AuditPolicy::kRecover;
    }

    NocSystem sys(config);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05,
                             config.seed);
    sys.setWorkload(&traffic);
    sys.run(cli.cycles);
    sys.setWorkload(nullptr);
    sys.runToCompletion(cli.cycles);

    const AccessTracker *tracker = sys.accessTracker();
    const std::string label = std::string(pgDesignName(design)) +
                              (withFaults ? "-faults" : "");
    const std::vector<AccessTracker::Violation> violations =
        tracker->verify();

    if (!cli.quiet) {
        std::printf("[%s] components=%zu edges=%zu accesses=%llu "
                    "violations=%zu advisory-reads=%zu\n",
                    label.c_str(), tracker->components().size(),
                    tracker->edges().size(),
                    static_cast<unsigned long long>(
                        tracker->totalAccesses()),
                    violations.size(),
                    tracker->undeclaredReads().size());
    }
    for (const AccessTracker::Violation &v : violations)
        std::printf("[%s] VIOLATION: %s\n", label.c_str(),
                    v.what.c_str());

    auto dump = [&](const std::string &dir, const char *ext,
                    void (AccessTracker::*fn)(std::FILE *) const) {
        if (dir.empty())
            return;
        const std::string path = dir + "/" + label + ext;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            std::exit(2);
        }
        (tracker->*fn)(f);
        std::fclose(f);
        if (!cli.quiet)
            std::printf("[%s] wrote %s\n", label.c_str(), path.c_str());
    };
    dump(cli.dotDir, ".dot", &AccessTracker::dumpDot);
    dump(cli.jsonDir, ".json", &AccessTracker::dumpJson);

    return violations.size();
}

}  // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--design") == 0) {
            const std::string name = value(i);
            if (name != "all") {
                PgDesign d;
                if (!parseDesignName(name, &d)) {
                    std::fprintf(stderr, "unknown design '%s'\n",
                                 name.c_str());
                    return 2;
                }
                cli.designs = {d};
            }
        } else if (std::strcmp(arg, "--cycles") == 0) {
            cli.cycles = static_cast<Cycle>(
                std::strtoull(value(i), nullptr, 10));
        } else if (std::strcmp(arg, "--faults") == 0) {
            cli.faults = true;
        } else if (std::strcmp(arg, "--check") == 0) {
            cli.check = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            cli.quiet = true;
        } else if (std::strcmp(arg, "--dot-dir") == 0) {
            cli.dotDir = value(i);
        } else if (std::strcmp(arg, "--json-dir") == 0) {
            cli.jsonDir = value(i);
        } else {
            return usage(argv[0]);
        }
    }

    size_t violations = 0;
    for (PgDesign d : cli.designs) {
        violations += runDesign(d, cli, false);
        if (cli.faults)
            violations += runDesign(d, cli, true);
    }
    if (violations == 0) {
        std::printf("nord-access-graph: all observed cross-component "
                    "accesses match the declared ownership contracts\n");
        return 0;
    }
    std::printf("nord-access-graph: %zu contract violation(s)\n",
                violations);
    return cli.check ? 1 : 0;
}

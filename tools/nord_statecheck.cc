/**
 * @file
 * nord-statecheck CLI: whole-tree state-coverage analyzer.
 *
 * Usage:
 *   nord-statecheck [--check] [--json] [--model] [root]
 *
 * Parses every Clocked / serializable class under root/src (default: the
 * current directory) into a member model (src/verify/statecheck/) and
 * cross-checks serialize-coverage, ownership-coverage and annotation
 * legality. Prints one `file:line: [rule] message` per finding, or JSON
 * Lines with --json. --model dumps the parsed member model instead of
 * checking (debugging aid). Exit status: 0 clean, 1 findings, 2 usage or
 * I/O error. --check is accepted for symmetry with the other analyzers;
 * checking is the default action.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "verify/findings_json.hh"
#include "verify/statecheck/state_check.hh"
#include "verify/statecheck/state_model.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--check] [--json] [--model] [root]\n"
                 "  statically proves every member of a Clocked /\n"
                 "  serializable class under root/src is serialized,\n"
                 "  ownership-declared, or NORD_STATE_EXCLUDE-annotated\n"
                 "  --json   one JSON object per finding (JSON Lines)\n"
                 "  --model  dump the parsed member model and exit\n",
                 argv0);
    return 2;
}

void
dumpModel(const nord::statecheck::TreeModel &model)
{
    for (const nord::statecheck::ClassModel &c : model.classes) {
        std::printf("%s:%d: %s%s%s%s%s\n", c.file.c_str(), c.line,
                    c.qualified.c_str(), c.clocked ? " [clocked]" : "",
                    c.declaresSerialize ? " [serialize]" : "",
                    c.declaresOwnership ? " [ownership]" : "",
                    c.nested ? (c.usedAsMemberType ? " [member-storage]"
                                                   : " [nested]")
                             : "");
        for (const nord::statecheck::MemberModel &m : c.members) {
            std::printf("    %s%s%s%s%s%s", m.name.c_str(),
                        m.isStatic ? " static" : "",
                        m.isConst ? " const" : "",
                        m.isReference ? " ref" : "",
                        m.isPointer ? " ptr" : "",
                        m.excluded ? " EXCLUDE(" : "");
            if (m.excluded)
                std::printf("%s)", m.category.c_str());
            std::printf("\n");
        }
    }
    std::printf("-- %zu classes, %zu method bodies\n",
                model.classes.size(), model.methods.size());
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool json = false;
    bool model = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            // Checking is the default action.
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--model") == 0) {
            model = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            root = argv[i];
        }
    }

    std::string err;
    const nord::statecheck::TreeModel tree =
        nord::statecheck::buildTreeModel(root, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "nord-statecheck: %s\n", err.c_str());
        return 2;
    }
    if (model) {
        dumpModel(tree);
        return 0;
    }

    const std::vector<nord::statecheck::CheckFinding> findings =
        nord::statecheck::checkTree(tree);
    for (const nord::statecheck::CheckFinding &f : findings) {
        if (json) {
            nord::printFindingJson(f.file, f.line, f.rule, f.severity,
                                   f.message);
        } else {
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        }
    }
    if (findings.empty()) {
        if (!json)
            std::printf("nord-statecheck: clean (every member serialized, "
                        "annotated, and ownership-declared)\n");
        return 0;
    }
    if (!json)
        std::printf("nord-statecheck: %zu finding(s)\n", findings.size());
    return 1;
}

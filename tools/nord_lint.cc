/**
 * @file
 * nord-lint CLI: static shard-safety / determinism lint over the source
 * tree (see src/verify/lint/source_lint.hh for the checks).
 *
 * Usage:
 *   nord-lint [--whitelist] [--json] [root]
 *
 * Lints the repo rooted at @p root (default: current directory), printing
 * one `file:line: [check] message` per finding, or one JSON object per
 * finding with --json (see verify/findings_json.hh). Exit status: 0
 * clean, 1 findings, 2 usage/I-O error. --whitelist prints the
 * sanctioned exceptions and their stories instead of linting.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "verify/findings_json.hh"
#include "verify/lint/source_lint.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--whitelist] [--json] [root]\n"
                 "  lints src/, tools/, bench/, examples/ and tests/ "
                 "under root (default .)\n"
                 "  --json       one JSON object per finding (JSON Lines)\n"
                 "  --whitelist  print the sanctioned exceptions and why "
                 "they are safe\n",
                 argv0);
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    bool showWhitelist = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--whitelist") == 0) {
            showWhitelist = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            root = argv[i];
        }
    }

    if (showWhitelist) {
        for (const nord::LintWhitelistEntry &w : nord::lintWhitelist()) {
            std::printf("%s [%s] token \"%s\"\n    %s\n",
                        w.fileSuffix.c_str(), w.check.c_str(),
                        w.token.c_str(), w.story.c_str());
        }
        return 0;
    }

    std::string err;
    const std::vector<nord::LintFinding> findings =
        nord::lintTree(root, nord::lintWhitelist(), &err);
    if (!err.empty()) {
        std::fprintf(stderr, "nord-lint: %s\n", err.c_str());
        return 2;
    }
    for (const nord::LintFinding &f : findings) {
        if (json) {
            nord::printFindingJson(f.file, f.line, f.check, "error",
                                   f.message);
        } else {
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.check.c_str(), f.message.c_str());
        }
    }
    if (findings.empty()) {
        if (!json)
            std::printf("nord-lint: clean (no hidden mutable state, no "
                        "determinism or side-channel escapes)\n");
        return 0;
    }
    if (!json)
        std::printf("nord-lint: %zu finding(s)\n", findings.size());
    return 1;
}

/**
 * @file
 * nord-campaign: fault-tolerant simulation campaign runner.
 *
 * Expands a (design x workload x rate x faultRate x seed) grid into a
 * crash-resumable work queue, supervises a fleet of forked workers
 * (heartbeats, per-point hang kills, capped jittered retry backoff,
 * poison-point quarantine) and aggregates the results into
 * report.json / report.csv / provenance.json. SIGKILL the orchestrator
 * at any moment, rerun the same command line, and it resumes from the
 * journal to a byte-identical report. See DESIGN.md section 5.9.
 *
 * With --join, any number of nord-campaign processes (same host or
 * different machines over a shared filesystem) cooperatively drain the
 * SAME campaign directory: work is claimed through per-shard lease
 * files with monotonic fencing tokens, an executor that loses its
 * lease self-fences and exits kExitLeaseLost, and a deterministic
 * merge of the per-executor journals keeps report.json / report.csv
 * byte-identical regardless of fleet membership history. See DESIGN.md
 * section 5.10.
 *
 * Exit codes follow the campaign taxonomy (src/campaign/exit_codes.hh):
 * 0 when every point completed, 10 when any point was quarantined, 12
 * on orchestration failure, 13 when drained by SIGINT/SIGTERM, 14 when
 * this executor lost a shard lease and self-fenced.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign_point.hh"
#include "campaign/executor.hh"
#include "campaign/exit_codes.hh"
#include "campaign/orchestrator.hh"
#include "verify/static/config_registry.hh"

namespace {

using namespace nord;
using namespace nord::campaign;

void
usage()
{
    std::printf(
        "usage: nord-campaign --out DIR [grid options] [supervision "
        "options]\n"
        "\n"
        "Runs (or resumes) a crash-resumable simulation campaign: the\n"
        "grid is expanded into a journaled work queue, each point runs\n"
        "as a supervised, checkpointing worker process, failures retry\n"
        "with capped jittered backoff, and deterministic failures are\n"
        "quarantined as poison with diagnostics. Rerunning the same\n"
        "command resumes from the journal and reproduces the report\n"
        "byte-for-byte.\n"
        "\n"
        "grid options:\n"
        "  --designs LIST       comma list of nopg|convpg|convpgopt|nord\n"
        "                       (default nord)\n"
        "  --patterns LIST      comma list of uniform_random|\n"
        "                       bit_complement|transpose|hotspot\n"
        "                       (default uniform_random)\n"
        "  --parsec LIST        comma list of PARSEC benchmark names\n"
        "                       (closed loop; added alongside patterns)\n"
        "  --rates LIST         synthetic injection rates (default 0.10)\n"
        "  --fault-rates LIST   transient fault rates (default 0)\n"
        "  --seeds LIST         simulation seeds (default 1)\n"
        "  --rows R --cols C    mesh shape (default 4x4)\n"
        "  --cycles N           synthetic measurement window (default\n"
        "                       2000)\n"
        "  --min-delivered F    delivery-fraction gate; below it a point\n"
        "                       fails deterministically and quarantines\n"
        "\n"
        "supervision options:\n"
        "  --out DIR            journal, checkpoints and reports (required)\n"
        "  --workers N          concurrent workers (default 2)\n"
        "  --max-failures K     counted failures before quarantine\n"
        "                       (default 3)\n"
        "  --hang-timeout SEC   heartbeat starvation kill (default 30)\n"
        "  --checkpoint-every N worker checkpoint period in cycles\n"
        "                       (default 500)\n"
        "  --backoff-initial S  first retry delay (default 0.25)\n"
        "  --backoff-max S      retry delay cap (default 30)\n"
        "  --rotate-events N    journal compaction threshold (default\n"
        "                       4096)\n"
        "\n"
        "multi-executor mode:\n"
        "  --join DIR           join (or start) the shared campaign in\n"
        "                       DIR: work is claimed shard-by-shard via\n"
        "                       lease files with fencing tokens, every\n"
        "                       executor appends to its own journal, and\n"
        "                       a deterministic merge yields the same\n"
        "                       report bytes as a single-executor run.\n"
        "                       Run the same command in N terminals (or\n"
        "                       on N machines over a shared filesystem)\n"
        "                       to drain the grid cooperatively\n"
        "  --executor-id ID     stable executor id (default: generated\n"
        "                       from host/pid)\n"
        "  --shards N           shard count, first joiner only (default\n"
        "                       min(points, 8); later joiners adopt the\n"
        "                       manifest's)\n"
        "  --lease-grace SEC    observed silence before a lease steal,\n"
        "                       first joiner only (default 2)\n"
        "  --lease-renew SEC    heartbeat period (default grace/8)\n"
        "\n"
        "chaos self-test:\n"
        "  --chaos              kill random workers on a seeded schedule;\n"
        "                       kills are never counted against points,\n"
        "                       so the final report must be byte-identical\n"
        "                       to an undisturbed run's\n"
        "  --chaos-seed N       schedule seed (default 1)\n"
        "  --chaos-interval S   mean seconds between kills (default 0.5)\n"
        "  --chaos-max-kills N  stop killing after N (default unlimited)\n"
        "  --chaos-partition-mean S\n"
        "                       (--join only) mean seconds between\n"
        "                       self-partitions: SIGSTOP this executor,\n"
        "                       let its leases expire, SIGCONT it and\n"
        "                       watch it self-fence (default off)\n"
        "  --chaos-partition-duration S\n"
        "                       suspension length (default 0)\n"
        "  --chaos-max-partitions N\n"
        "                       stop after N partitions (default 1)\n"
        "  --poison-points LIST point ids forced to fail their gate\n"
        "                       deterministically (quarantine test)\n"
        "  --hang-points LIST   point ids forced to stop heartbeating\n"
        "                       (hang-kill test)\n"
        "\n"
        "  --drain-after-launches N\n"
        "                       (--join only) drain this executor after\n"
        "                       N worker launches -- deterministic\n"
        "                       handover testing (default off)\n"
        "  --list               print the expanded grid and exit\n"
        "  --help               this text\n");
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
parseU64List(const std::string &arg, std::vector<std::uint64_t> *out)
{
    out->clear();
    for (const std::string &s : splitList(arg)) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
        if (!end || *end != '\0')
            return false;
        out->push_back(v);
    }
    return !out->empty();
}

bool
parseDoubleList(const std::string &arg, std::vector<double> *out)
{
    out->clear();
    for (const std::string &s : splitList(arg)) {
        char *end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        if (!end || *end != '\0')
            return false;
        out->push_back(v);
    }
    return !out->empty();
}

void
onSignal(int)
{
    requestCampaignDrain();
}

}  // namespace

int
main(int argc, char **argv)
{
    GridSpec grid;
    OrchestratorOptions opts;
    std::vector<std::uint64_t> poisonIds;
    std::vector<std::uint64_t> hangIds;
    bool list = false;
    bool join = false;
    std::string executorId;
    std::uint64_t shardCount = 0;
    double leaseGraceSec = 2.0;
    double leaseRenewSec = 0.0;
    std::uint64_t drainAfterLaunches = 0;

    auto needValue = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(kExitBadConfig);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            list = true;
        } else if (a == "--out") {
            opts.outDir = needValue(i);
            ++i;
        } else if (a == "--join") {
            join = true;
            opts.outDir = needValue(i);
            ++i;
        } else if (a == "--executor-id") {
            executorId = needValue(i);
            ++i;
        } else if (a == "--shards") {
            shardCount = std::strtoull(needValue(i), nullptr, 10);
            ++i;
        } else if (a == "--lease-grace") {
            leaseGraceSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--lease-renew") {
            leaseRenewSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--drain-after-launches") {
            drainAfterLaunches = std::strtoull(needValue(i), nullptr, 10);
            ++i;
        } else if (a == "--designs") {
            grid.designs.clear();
            for (const std::string &name : splitList(needValue(i))) {
                PgDesign d = PgDesign::kNord;
                if (!parseDesignName(name, &d)) {
                    std::fprintf(stderr, "unknown design '%s'\n",
                                 name.c_str());
                    return kExitBadConfig;
                }
                grid.designs.push_back(d);
            }
            ++i;
        } else if (a == "--patterns") {
            grid.patterns.clear();
            for (const std::string &name : splitList(needValue(i))) {
                bool found = false;
                for (int p = 0; p <= 3; ++p) {
                    const auto tp = static_cast<TrafficPattern>(p);
                    if (name == trafficPatternName(tp)) {
                        grid.patterns.push_back(tp);
                        found = true;
                    }
                }
                if (!found) {
                    std::fprintf(stderr, "unknown pattern '%s'\n",
                                 name.c_str());
                    return kExitBadConfig;
                }
            }
            ++i;
        } else if (a == "--parsec") {
            grid.parsec = splitList(needValue(i));
            ++i;
        } else if (a == "--rates") {
            if (!parseDoubleList(needValue(i), &grid.rates)) {
                std::fprintf(stderr, "bad --rates list\n");
                return kExitBadConfig;
            }
            ++i;
        } else if (a == "--fault-rates") {
            if (!parseDoubleList(needValue(i), &grid.faultRates)) {
                std::fprintf(stderr, "bad --fault-rates list\n");
                return kExitBadConfig;
            }
            ++i;
        } else if (a == "--seeds") {
            if (!parseU64List(needValue(i), &grid.seeds)) {
                std::fprintf(stderr, "bad --seeds list\n");
                return kExitBadConfig;
            }
            ++i;
        } else if (a == "--rows") {
            grid.rows = std::atoi(needValue(i));
            ++i;
        } else if (a == "--cols") {
            grid.cols = std::atoi(needValue(i));
            ++i;
        } else if (a == "--cycles") {
            grid.measure =
                static_cast<Cycle>(std::strtoull(needValue(i), nullptr,
                                                 10));
            ++i;
        } else if (a == "--min-delivered") {
            grid.minDelivered = std::atof(needValue(i));
            ++i;
        } else if (a == "--workers") {
            opts.workers = std::atoi(needValue(i));
            ++i;
        } else if (a == "--max-failures") {
            opts.maxFailures = std::atoi(needValue(i));
            ++i;
        } else if (a == "--hang-timeout") {
            opts.hangTimeoutSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--checkpoint-every") {
            opts.worker.checkpointEvery =
                static_cast<Cycle>(std::strtoull(needValue(i), nullptr,
                                                 10));
            ++i;
        } else if (a == "--backoff-initial") {
            opts.backoff.initialSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--backoff-max") {
            opts.backoff.maxSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--rotate-events") {
            opts.rotateEvents = std::strtoull(needValue(i), nullptr, 10);
            ++i;
        } else if (a == "--chaos") {
            opts.chaos.enabled = true;
        } else if (a == "--chaos-seed") {
            opts.chaos.seed = std::strtoull(needValue(i), nullptr, 10);
            ++i;
        } else if (a == "--chaos-interval") {
            opts.chaos.meanIntervalSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--chaos-max-kills") {
            opts.chaos.maxKills = std::atoi(needValue(i));
            ++i;
        } else if (a == "--chaos-partition-mean") {
            opts.chaos.partitionMeanSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--chaos-partition-duration") {
            opts.chaos.partitionDurationSec = std::atof(needValue(i));
            ++i;
        } else if (a == "--chaos-max-partitions") {
            opts.chaos.maxPartitions = std::atoi(needValue(i));
            ++i;
        } else if (a == "--poison-points") {
            if (!parseU64List(needValue(i), &poisonIds)) {
                std::fprintf(stderr, "bad --poison-points list\n");
                return kExitBadConfig;
            }
            ++i;
        } else if (a == "--hang-points") {
            if (!parseU64List(needValue(i), &hangIds)) {
                std::fprintf(stderr, "bad --hang-points list\n");
                return kExitBadConfig;
            }
            ++i;
        } else {
            std::fprintf(stderr, "unknown option '%s' (--help)\n",
                         a.c_str());
            return kExitBadConfig;
        }
    }

    std::vector<PointSpec> specs = expandGrid(grid);
    for (std::uint64_t id : poisonIds) {
        if (id < specs.size())
            specs[id].selfTest = SelfTest::kPoison;
    }
    for (std::uint64_t id : hangIds) {
        if (id < specs.size())
            specs[id].selfTest = SelfTest::kHang;
    }

    if (list) {
        for (const PointSpec &spec : specs)
            std::printf("%s\n", specJson(spec).c_str());
        return 0;
    }
    if (opts.outDir.empty()) {
        std::fprintf(stderr, "--out DIR or --join DIR is required "
                             "(--help)\n");
        return kExitBadConfig;
    }
    if (specs.empty()) {
        std::fprintf(stderr, "the grid is empty\n");
        return kExitBadConfig;
    }

    // An unbounded chaos schedule that fires faster than the hang
    // timeout livelocks any hang point: the chaos kill always lands
    // before the heartbeat timeout, is never counted, and the point
    // relaunches forever. Warn rather than refuse -- grids without hang
    // points are fine -- but make the trap visible up front.
    if (opts.chaos.enabled && opts.chaos.maxKills == 0 &&
        opts.chaos.meanIntervalSec < opts.hangTimeoutSec) {
        std::fprintf(stderr,
                     "warning: --chaos-interval (%.3gs) is below "
                     "--hang-timeout (%.3gs) with no --chaos-max-kills; "
                     "hang points can be killed forever without ever "
                     "being counted\n",
                     opts.chaos.meanIntervalSec, opts.hangTimeoutSec);
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (join) {
        ExecutorOptions eopts;
        eopts.outDir = opts.outDir;
        eopts.execId = executorId;
        eopts.shards = shardCount;
        eopts.leaseGraceSec = leaseGraceSec;
        eopts.leaseRenewSec = leaseRenewSec;
        eopts.workers = opts.workers;
        eopts.maxFailures = opts.maxFailures;
        eopts.hangTimeoutSec = opts.hangTimeoutSec;
        eopts.pollIntervalSec = opts.pollIntervalSec;
        eopts.backoff = opts.backoff;
        eopts.worker = opts.worker;
        eopts.chaos = opts.chaos;
        eopts.drainAfterLaunches = drainAfterLaunches;

        ExecutorOutcome eout;
        std::string eerr;
        if (!runExecutor(specs, eopts, &eout, &eerr)) {
            std::fprintf(stderr, "campaign executor failed: %s\n",
                         eerr.c_str());
            return kExitInfraFailure;
        }
        std::printf("nord-campaign[%s]: completed %llu, quarantined "
                    "%llu, missing %llu (launched %llu, %llu chaos "
                    "kill(s), %llu partition(s), %llu stale commit(s) "
                    "dropped)\n",
                    eout.execId.c_str(),
                    static_cast<unsigned long long>(eout.completed),
                    static_cast<unsigned long long>(eout.quarantined),
                    static_cast<unsigned long long>(eout.missing),
                    static_cast<unsigned long long>(eout.launches),
                    static_cast<unsigned long long>(eout.chaosKills),
                    static_cast<unsigned long long>(eout.partitions),
                    static_cast<unsigned long long>(eout.staleDropped));
        if (eout.fenced) {
            std::fprintf(stderr,
                         "nord-campaign[%s]: lease lost (%s); the shard "
                         "is retried by its new owner\n",
                         eout.execId.c_str(), eout.fenceReason.c_str());
            return kExitLeaseLost;
        }
        if (eout.interrupted) {
            std::printf("nord-campaign: drained by signal; rerun the "
                        "same command to resume\n");
            return kExitInterrupted;
        }
        if (eout.wroteReports)
            std::printf("nord-campaign: report %s\n",
                        eout.reportJson.c_str());
        return eout.quarantined > 0 ? kExitGateFailure : kExitOk;
    }

    std::printf("nord-campaign: %zu points, %d workers, journal %s\n",
                specs.size(), opts.workers,
                (opts.outDir + "/journal.jsonl").c_str());

    CampaignOutcome outcome;
    std::string err;
    if (!runCampaign(specs, opts, &outcome, &err)) {
        std::fprintf(stderr, "campaign failed: %s\n", err.c_str());
        return kExitInfraFailure;
    }

    std::printf("nord-campaign: completed %llu, quarantined %llu, "
                "missing %llu (launched %llu worker(s), %llu chaos "
                "kill(s))\n",
                static_cast<unsigned long long>(outcome.completed),
                static_cast<unsigned long long>(outcome.quarantined),
                static_cast<unsigned long long>(outcome.missing),
                static_cast<unsigned long long>(outcome.launches),
                static_cast<unsigned long long>(outcome.chaosKills));
    if (outcome.interrupted) {
        std::printf("nord-campaign: drained by signal; rerun the same "
                    "command to resume\n");
        return kExitInterrupted;
    }
    std::printf("nord-campaign: report %s\n", outcome.reportJson.c_str());
    return outcome.quarantined > 0 ? kExitGateFailure : kExitOk;
}

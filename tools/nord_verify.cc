/**
 * @file
 * nord-verify: offline protocol verifier CLI.
 *
 * Runs the static verification passes (src/verify/static/) over one
 * configuration or the whole shipped matrix and exits non-zero on any
 * refuted property, printing the counterexample. See DESIGN.md section 5.7
 * and `nord-verify --help`.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "verify/static/cdg.hh"
#include "verify/static/config_lint.hh"
#include "verify/static/config_registry.hh"
#include "verify/static/fsm_check.hh"

namespace {

using namespace nord;

struct CliOptions
{
    bool all = false;
    PgDesign design = PgDesign::kNord;
    int rows = 4;
    int cols = 4;
    std::string pass = "all";  // cdg | fsm | lint | all
    bool steering = true;
    bool seedCycle = false;    // CDG: force a dateline-less escape ring
    FsmMutation mutation = FsmMutation::kNone;
    bool watchdog = false;
};

void
usage()
{
    std::printf(
        "usage: nord-verify [options]\n"
        "\n"
        "Statically verifies a NoRD network configuration: proves the\n"
        "escape channel-dependency graph acyclic (deadlock freedom under\n"
        "Duato's protocol), model-checks the power-gating handshake, and\n"
        "lints the configuration space.\n"
        "\n"
        "options:\n"
        "  --all                verify the whole shipped matrix (4 designs\n"
        "                       x {4x4, 8x8} x both routing modes)\n"
        "  --design NAME        nopg | convpg | convpgopt | nord (default\n"
        "                       nord)\n"
        "  --rows R --cols C    mesh shape (default 4x4)\n"
        "  --pass NAME          cdg | fsm | lint | all (default all)\n"
        "  --no-steering        CDG: analyze NoRD without the steering\n"
        "                       table (the pre-criticality routing mode)\n"
        "  --seed-cycle         CDG negative test: model a single-escape-VC\n"
        "                       ring without the dateline; must report a\n"
        "                       cycle\n"
        "  --mutation NAME      FSM negative test: deaf-wakeup-input |\n"
        "                       drop-ic-guard | no-drain-check\n"
        "  --watchdog           FSM: model the always-on wakeup watchdog\n"
        "  --help               this text\n");
}

bool
runCdg(const std::string &label, const NocConfig &config, bool steering,
       bool seedCycle)
{
    CdgOptions opts;
    opts.steering = steering;
    if (seedCycle)
        opts.escapeLevelOverride = 0;
    CdgAnalysis analysis(config, opts);
    CdgResult result = analysis.run();
    std::printf("[cdg ] %-18s %s\n", label.c_str(),
                result.summary().c_str());
    for (const std::string &p : result.problems)
        std::printf("       problem: %s\n", p.c_str());
    if (!result.cycle.empty()) {
        std::printf("%s", result.cycle.describe().c_str());
        std::string why;
        if (analysis.replayCycle(result.cycle, &why)) {
            std::printf("       counterexample replays against the live "
                        "RoutingPolicy\n");
        } else {
            std::printf("       REPLAY FAILED: %s\n", why.c_str());
        }
    }
    return result.ok();
}

bool
runFsm(const std::string &label, const NocConfig &config,
       FsmMutation mutation, bool watchdog)
{
    FsmOptions opts;
    opts.design = config.design;
    opts.wakeupThreshold = config.nordPowerThreshold;
    opts.mutation = mutation;
    opts.watchdog = watchdog;
    FsmCheck checker(opts);
    FsmResult result = checker.run();
    std::printf("[fsm ] %-18s %s\n", label.c_str(),
                result.summary().c_str());
    for (const FsmCounterexample &cx : result.counterexamples)
        std::printf("%s", cx.describe().c_str());
    return result.ok();
}

bool
runLint(const std::string &label, const NocConfig &config)
{
    LintResult result = lintConfig(config);
    std::printf("[lint] %-18s %s\n", label.c_str(),
                result.summary().c_str());
    return result.ok();
}

bool
verifyOne(const std::string &label, const NocConfig &config,
          const CliOptions &cli)
{
    bool ok = true;
    if (cli.pass == "lint" || cli.pass == "all")
        ok = runLint(label, config) && ok;
    if (cli.pass == "cdg" || cli.pass == "all")
        ok = runCdg(label, config, cli.steering, cli.seedCycle) && ok;
    if (cli.pass == "fsm" || cli.pass == "all")
        ok = runFsm(label, config, cli.mutation, cli.watchdog) && ok;
    return ok;
}

}  // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--all") {
            cli.all = true;
        } else if (arg == "--design") {
            if (!parseDesignName(value(), &cli.design)) {
                std::fprintf(stderr, "unknown design\n");
                return 2;
            }
        } else if (arg == "--rows") {
            cli.rows = std::atoi(value());
        } else if (arg == "--cols") {
            cli.cols = std::atoi(value());
        } else if (arg == "--pass") {
            cli.pass = value();
        } else if (arg == "--no-steering") {
            cli.steering = false;
        } else if (arg == "--seed-cycle") {
            cli.seedCycle = true;
        } else if (arg == "--mutation") {
            const std::string name = value();
            if (name == "deaf-wakeup-input") {
                cli.mutation = FsmMutation::kDeafWakeupInput;
            } else if (name == "drop-ic-guard") {
                cli.mutation = FsmMutation::kDropIcGuard;
            } else if (name == "no-drain-check") {
                cli.mutation = FsmMutation::kNoDrainCheck;
            } else {
                std::fprintf(stderr, "unknown mutation\n");
                return 2;
            }
        } else if (arg == "--watchdog") {
            cli.watchdog = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    bool ok = true;
    if (cli.all) {
        for (const NamedConfig &named : shippedConfigs()) {
            // Both routing modes for NoRD: with the criticality-derived
            // steering table and without (pure minimal + ring fallback).
            CliOptions one = cli;
            ok = verifyOne(named.name, named.config, one) && ok;
            if (named.config.design == PgDesign::kNord &&
                (cli.pass == "cdg" || cli.pass == "all")) {
                one.steering = false;
                ok = runCdg(named.name + "/nosteer", named.config,
                            /*steering=*/false, cli.seedCycle) && ok;
            }
        }
    } else {
        NocConfig config = makeShippedConfig(cli.design, cli.rows, cli.cols);
        const std::string label =
            std::string(pgDesignName(config.design)) + "-" +
            std::to_string(cli.rows) + "x" + std::to_string(cli.cols);
        ok = verifyOne(label, config, cli);
    }
    if (!ok) {
        std::printf("nord-verify: FAILED\n");
        return 1;
    }
    std::printf("nord-verify: all properties hold\n");
    return 0;
}

/**
 * @file
 * Example: design-space exploration with the public API -- sweep buffer
 * depth, VC count, wakeup latency and the aggressive bypass, and report
 * latency / energy for NoRD under a PARSEC-like load.
 *
 * Usage: design_space [benchmark]   (default: ferret)
 */

#include <cstdio>

#include "network/noc_system.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"

namespace {

struct Point
{
    const char *name;
    nord::NocConfig cfg;
};

double
runPoint(const nord::NocConfig &cfg, const nord::ParsecParams &params,
         double *energyOut)
{
    using namespace nord;
    NocSystem sys(cfg);
    ParsecWorkload wl(params, 1);
    sys.setWorkload(&wl);
    sys.runToCompletion(30'000'000);
    sys.finalizeStats();
    PowerModel pm;
    const int numLinks = 2 * (cfg.rows * (cfg.cols - 1) +
                              cfg.cols * (cfg.rows - 1));
    EnergyBreakdown e =
        pm.compute(sys.stats(), sys.now(), numLinks, cfg.design);
    *energyOut = e.total() * 1e6;  // uJ
    return sys.stats().avgPacketLatency();
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace nord;

    const ParsecParams &params =
        parsecByName(argc > 1 ? argv[1] : "ferret");

    NocConfig base;
    base.design = PgDesign::kNord;

    std::vector<Point> points;
    points.push_back({"baseline (Table 1)", base});
    {
        NocConfig c = base;
        c.bufferDepth = 2;
        points.push_back({"shallow buffers (2)", c});
    }
    {
        NocConfig c = base;
        c.bufferDepth = 10;
        points.push_back({"deep buffers (10)", c});
    }
    {
        NocConfig c = base;
        c.numVcs = 6;
        c.numEscapeVcs = 2;
        points.push_back({"6 VCs (4 adaptive)", c});
    }
    {
        NocConfig c = base;
        c.wakeupLatency = 20;
        points.push_back({"slow wakeup (20)", c});
    }
    {
        NocConfig c = base;
        c.nordAggressiveBypass = true;
        points.push_back({"aggressive bypass", c});
    }
    {
        NocConfig c = base;
        c.nordPerfCentricCount = 0;
        points.push_back({"no perf-centric", c});
    }

    std::printf("=== NoRD design space on %s ===\n", params.name.c_str());
    std::printf("%-22s %10s %12s\n", "variant", "latency", "energy(uJ)");
    for (const Point &p : points) {
        double energy = 0.0;
        double lat = runPoint(p.cfg, params, &energy);
        std::printf("%-22s %10.2f %12.2f\n", p.name, lat, energy);
    }
    return 0;
}

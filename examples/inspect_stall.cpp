/**
 * @file
 * Diagnostic: run uniform traffic on a chosen design and dump component
 * state if deliveries stop making progress (stall detector).
 *
 * Usage: inspect_stall [design 0-3] [rate] [cycles]
 */

#include <cstdio>
#include <cstdlib>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

int
main(int argc, char **argv)
{
    using namespace nord;
    int design = argc > 1 ? std::atoi(argv[1]) : 3;
    double rate = argc > 2 ? std::atof(argv[2]) : 0.05;
    Cycle cycles = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;

    NocConfig cfg;
    cfg.design = static_cast<PgDesign>(design);
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, rate, 7);
    sys.setWorkload(&traffic);

    std::uint64_t lastDelivered = 0;
    Cycle lastProgress = 0;
    for (Cycle t = 0; t < cycles; t += 500) {
        sys.run(500);
        if (sys.stats().packetsDelivered() != lastDelivered) {
            lastDelivered = sys.stats().packetsDelivered();
            lastProgress = sys.now();
        } else if (sys.now() - lastProgress > 5000) {
            std::printf("STALL: no deliveries since cycle %llu\n",
                        static_cast<unsigned long long>(lastProgress));
            sys.dumpState(stdout);
            return 1;
        }
    }
    std::printf("OK: delivered %llu packets, latency %.2f, idle %.1f%%\n",
                static_cast<unsigned long long>(
                    sys.stats().packetsDelivered()),
                sys.stats().avgPacketLatency(),
                100.0 * sys.stats().avgIdleFraction());
    return 0;
}

/**
 * @file
 * Example: visualize the Bypass Ring construction and the router
 * criticality analysis for an arbitrary mesh size.
 *
 * Usage: ring_explorer [rows] [cols]   (default: 4 4)
 */

#include <cstdio>
#include <cstdlib>

#include "topology/criticality.hh"

int
main(int argc, char **argv)
{
    using namespace nord;

    const int rows = argc > 1 ? std::atoi(argv[1]) : 4;
    const int cols = argc > 2 ? std::atoi(argv[2]) : 4;
    MeshTopology mesh(rows, cols);
    BypassRing ring(mesh);

    std::printf("=== Bypass Ring for a %dx%d mesh ===\n\n", rows, cols);
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c)
            std::printf("%4d", mesh.nodeAt(r, c));
        std::printf("\n");
    }

    std::printf("\nring order: ");
    for (NodeId n : ring.order())
        std::printf("%d ", n);
    std::printf("\n\nper-router bypass ports (in -> node -> out):\n");
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        std::printf("  node %2d: %s -> [%2d] -> %s   (pred %2d, succ %2d)%s\n",
                    n, dirName(ring.bypassInport(n)), n,
                    dirName(ring.bypassOutport(n)), ring.predecessor(n),
                    ring.successor(n),
                    ring.crossesDateline(n) ? "  <- dateline edge" : "");
    }

    if (mesh.numNodes() <= 36) {
        CriticalityAnalyzer analyzer(mesh, ring);
        auto sweep = analyzer.greedySweep();
        const int knee = CriticalityAnalyzer::kneePoint(sweep);
        std::printf("\ncriticality knee: %d routers\n", knee);
        std::printf("performance-centric set:");
        for (NodeId n : sweep[knee].poweredOn)
            std::printf(" %d", n);
        std::printf("\nring-only avg distance: %.2f hops @ %.2f "
                    "cycles/hop\n",
                    sweep[0].avgDistanceHops, sweep[0].avgPerHopLatency);
        std::printf("knee avg distance:      %.2f hops @ %.2f "
                    "cycles/hop\n",
                    sweep[knee].avgDistanceHops,
                    sweep[knee].avgPerHopLatency);
        std::printf("all-on avg distance:    %.2f hops @ %.2f "
                    "cycles/hop\n",
                    sweep.back().avgDistanceHops,
                    sweep.back().avgPerHopLatency);
    } else {
        std::printf("\n(criticality sweep skipped for large meshes; "
                    "run fig06_router_criticality)\n");
    }
    return 0;
}

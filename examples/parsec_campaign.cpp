/**
 * @file
 * Example: run one PARSEC-like benchmark model under all four designs
 * (No_PG, Conv_PG, Conv_PG_OPT, NoRD) and compare the paper's headline
 * metrics: static energy, wakeups, packet latency and execution time.
 *
 * Usage: parsec_campaign [benchmark_name]   (default: canneal)
 */

#include <cstdio>

#include "../bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace nord;
    using namespace nord::bench;

    const char *name = argc > 1 ? argv[1] : "canneal";
    const ParsecParams &params = parsecByName(name);
    PowerModel pm;

    std::printf("benchmark: %s (gap %.0f, mlp %d, %d txns/core)\n\n",
                params.name.c_str(), params.computeGapMean,
                params.maxOutstanding, params.transactionsPerCore);
    std::printf("%-12s %9s %9s %9s %8s %8s %8s %9s\n", "design",
                "exec(cyc)", "latency", "wakeups", "idle%", "off%",
                "staticE", "totalE");

    RunResult base;
    for (int d = 0; d < 4; ++d) {
        const PgDesign design = static_cast<PgDesign>(d);
        RunResult r = runParsec(design, params, pm);
        if (d == 0)
            base = r;
        std::printf("%-12s %9llu %9.2f %9llu %7.1f%% %7.1f%% %8.2f%% %8.2f%%\n",
                    pgDesignName(design),
                    static_cast<unsigned long long>(r.cycles),
                    r.avgLatency,
                    static_cast<unsigned long long>(r.wakeups),
                    100.0 * r.idleFraction, 100.0 * r.offFraction,
                    100.0 * r.staticEnergy() / base.staticEnergy(),
                    100.0 * r.energy.total() / base.energy.total());
    }
    std::printf("\nstaticE/totalE are normalized to No_PG "
                "(static includes PG overhead).\n");
    return 0;
}

/**
 * @file
 * Example: explore the power model across technology nodes and voltages,
 * and analyze idle-period structure for one benchmark under No_PG --
 * the analysis that motivates NoRD (Sections 2 and 3).
 *
 * Usage: power_explorer [benchmark]   (default: canneal)
 */

#include <cstdio>

#include "network/noc_system.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"

int
main(int argc, char **argv)
{
    using namespace nord;

    std::printf("=== Technology sweep: router static power share ===\n");
    std::printf("%-6s", "node");
    for (double v : {1.2, 1.1, 1.0})
        std::printf("   %.1fV ", v);
    std::printf("\n");
    for (TechNode node : {TechNode::k65nm, TechNode::k45nm,
                          TechNode::k32nm}) {
        std::printf("%-6s", techNodeName(node));
        for (double v : {1.2, 1.1, 1.0}) {
            PowerModel pm(TechParams{node, v, 3.0});
            std::printf("  %5.1f%%", 100.0 * pm.staticShareAtReference());
        }
        std::printf("\n");
    }

    PowerModel pm;
    std::printf("\nbreakeven time: %.1f cycles (paper: ~10)\n",
                pm.breakEvenCycles(pm.wakeupOverheadEnergy(10)));
    std::printf("bypass hop / router hop energy: %.0f%%\n",
                100.0 * (pm.bypassLatchEnergy() +
                         pm.bypassForwardEnergy()) /
                    pm.routerHopEnergy());

    // Idle-period anatomy under a real workload.
    const char *name = argc > 1 ? argv[1] : "canneal";
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    ParsecWorkload wl(parsecByName(name), 1);
    sys.setWorkload(&wl);
    if (!sys.runToCompletion(30'000'000))
        std::fprintf(stderr, "warning: cycle limit hit\n");
    sys.finalizeStats();

    IdlePeriodHistogram hist = sys.stats().combinedIdleHistogram();
    std::printf("\n=== Idle periods under %s (No_PG) ===\n", name);
    std::printf("router idleness: %.1f%%\n",
                100.0 * sys.stats().avgIdleFraction());
    std::printf("idle periods: %llu, mean length %.1f cycles\n",
                static_cast<unsigned long long>(hist.count()),
                hist.mean());
    for (Cycle limit : {2, 5, 10, 20, 50}) {
        std::printf("  <= %2llu cycles: %5.1f%% of periods\n",
                    static_cast<unsigned long long>(limit),
                    100.0 * hist.fractionAtOrBelow(limit));
    }
    std::printf("Periods at or below the %d-cycle breakeven time cannot "
                "profit from\nconventional power-gating -- the "
                "opportunity NoRD unlocks.\n", cfg.betCycles);
    return 0;
}

/**
 * @file
 * Quickstart: build a 4x4 NoRD mesh, drive it with uniform random
 * traffic, and print latency / power-gating statistics.
 *
 * Usage: quickstart [injection_rate_flits_per_node_cycle]
 */

#include <cstdio>
#include <cstdlib>

#include "network/noc_system.hh"
#include "power/power_model.hh"
#include "traffic/synthetic_traffic.hh"

int
main(int argc, char **argv)
{
    using namespace nord;

    double rate = 0.05;
    if (argc > 1)
        rate = std::atof(argv[1]);

    NocConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.design = PgDesign::kNord;
    cfg.statsWarmup = 10000;

    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, rate, 42);
    sys.setWorkload(&traffic);

    std::printf("NoRD quickstart: 4x4 mesh, %s, %.3f flits/node/cycle\n",
                pgDesignName(cfg.design), rate);
    std::printf("bypass ring:");
    NodeId n = 0;
    for (int i = 0; i < cfg.numNodes(); ++i) {
        std::printf(" %d ->", n);
        n = sys.ring().successor(n);
    }
    std::printf(" 0\n");
    std::printf("performance-centric routers:");
    for (NodeId r : sys.perfCentricRouters())
        std::printf(" %d", r);
    std::printf("\n\n");

    sys.run(110000);
    sys.finalizeStats();

    const NetworkStats &st = sys.stats();
    PowerModel pm;
    EnergyBreakdown e = pm.compute(st, sys.now(), 48, cfg.design);

    std::printf("packets delivered: %llu\n",
                static_cast<unsigned long long>(st.packetsDelivered()));
    std::printf("avg packet latency: %.2f cycles\n",
                st.avgPacketLatency());
    std::printf("avg hops:          %.2f\n", st.avgHops());
    std::printf("router idle:       %.1f%%\n",
                100.0 * st.avgIdleFraction());
    std::printf("router wakeups:    %llu\n",
                static_cast<unsigned long long>(st.totalWakeups()));
    ActivityCounters t = st.totals();
    std::printf("gated-off cycles:  %.1f%%\n",
                100.0 * static_cast<double>(t.offCycles) /
                    static_cast<double>(t.onCycles + t.offCycles +
                                        t.wakingCycles));
    std::printf("NoC power:         %.3f W\n",
                e.averagePowerW(sys.now(), pm.tech().cycleTime()));
    std::printf("  router static    %.3f W\n",
                e.routerStatic / (sys.now() * pm.tech().cycleTime()));
    std::printf("  router dynamic   %.3f W\n",
                e.routerDynamic / (sys.now() * pm.tech().cycleTime()));
    std::printf("  PG overhead      %.3f W\n",
                e.pgOverhead / (sys.now() * pm.tech().cycleTime()));
    return 0;
}
